/// \file simulator.h
/// Discrete-event simulation kernel. All networked and scheduled behaviour in
/// evsys (buses, ECUs, middleware dispatch, charging protocol) executes as
/// events on this kernel; continuous plant models (battery, motor, vehicle)
/// are advanced by fixed-step events layered on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ev/sim/time.h"

namespace ev::sim {

/// Identifies a scheduled event so it can be cancelled. Valid ids are
/// non-zero; kNoEvent never names a live event.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Attribution tag for scheduled events. The simulator stores and forwards
/// the tag to its observer untouched; by convention instrumented subsystems
/// pass an obs::MetricsRegistry counter id so dispatches can be attributed
/// per source without any lookup. kUntagged means "no attribution".
using EventTag = std::uint32_t;
inline constexpr EventTag kUntagged = 0xffff'ffffu;

/// Selects the delay-relative schedule_periodic() overload: the first firing
/// happens \p delay after the current time. Prefer this over computing
/// `now() + delay` at the call site — an absolute first-activation time
/// written as a plain duration silently becomes a phase error once the
/// caller no longer runs at t=0.
struct After {
  Time delay;
};

/// Single-threaded discrete-event simulator with deterministic FIFO tie
/// breaking: events at equal timestamps fire in scheduling order.
///
/// Scheduling API contract (uniform across all schedule_* functions):
///  - every function returns a fresh non-zero EventId usable with cancel();
///  - activation times must not lie in the past (throws std::invalid_argument);
///  - one-shot events release their handler after dispatch, periodic events
///    repeat until cancel() (which removes all future repetitions);
///  - handlers may schedule and cancel freely, including their own id.
class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Observation hook. The kernel itself stays dependency-free: this
  /// interface is implemented by ev::obs (SimObserver) or by tests. All
  /// callbacks carry simulation-time quantities only, so anything derived
  /// from them is deterministic across same-seed runs. Callbacks must not
  /// mutate the simulator.
  class Observer {
   public:
    virtual ~Observer() = default;
    /// An event was enqueued at time \p now to fire at \p at.
    virtual void on_scheduled(EventId id, Time at, Time now,
                              std::size_t pending) noexcept = 0;
    /// An event fired at \p at after waiting since \p enqueued_at.
    /// \p pending counts live events after this dispatch; \p tag is the
    /// scheduling call's attribution tag.
    virtual void on_dispatched(EventId id, Time at, Time enqueued_at,
                               std::size_t pending, EventTag tag) noexcept = 0;
    /// A live event was cancelled.
    virtual void on_cancelled(EventId id, std::size_t pending) noexcept = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at zero.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules \p handler to fire once at absolute time \p at (>= now()).
  EventId schedule_at(Time at, Handler handler, EventTag tag = kUntagged);

  /// Schedules \p handler to fire once \p delay after the current time.
  EventId schedule_in(Time delay, Handler handler, EventTag tag = kUntagged);

  /// Schedules \p handler every \p period starting at absolute time \p first.
  EventId schedule_periodic(Time first, Time period, Handler handler,
                            EventTag tag = kUntagged);

  /// Schedules \p handler every \p period, first firing start.delay after the
  /// current time (delay-relative twin of the absolute-time overload).
  EventId schedule_periodic(After start, Time period, Handler handler,
                            EventTag tag = kUntagged);

  /// Cancels a pending (or periodic) event. Returns true if the id was alive.
  bool cancel(EventId id);

  /// Runs events with timestamp <= \p until; afterwards now() == \p until
  /// unless the queue drained earlier. Returns events dispatched.
  std::size_t run_until(Time until);

  /// Runs until the event queue is fully drained. Returns events dispatched.
  std::size_t run();

  /// Dispatches exactly one event if any is pending. Returns false when idle.
  bool step();

  /// Number of live events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

  /// Total events dispatched since construction.
  [[nodiscard]] std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Attaches \p observer (nullptr detaches). The observer must outlive its
  /// attachment; when detached the kernel hot path pays one untaken branch.
  void set_observer(Observer* observer) noexcept { observer_ = observer; }
  [[nodiscard]] Observer* observer() const noexcept { return observer_; }

 private:
  struct Scheduled {
    Time at;
    std::uint64_t seq;  // FIFO tie break for equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Entry {
    Handler handler;
    Time period{};
    Time enqueued{};  // when the current activation was queued (observer lag)
    EventTag tag = kUntagged;
    bool periodic = false;
  };

  EventId enqueue(Time at, Handler handler, bool periodic, Time period, EventTag tag);

  Time now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  Observer* observer_ = nullptr;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  std::unordered_map<EventId, Entry> live_;
};

}  // namespace ev::sim
