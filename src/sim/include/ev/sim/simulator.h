/// \file simulator.h
/// Discrete-event simulation kernel. All networked and scheduled behaviour in
/// evsys (buses, ECUs, middleware dispatch, charging protocol) executes as
/// events on this kernel; continuous plant models (battery, motor, vehicle)
/// are advanced by fixed-step events layered on top.
///
/// Storage design (hot-path): scheduled records live in a slab of reusable
/// slots threaded on a free list, and the time ordering is a flat binary heap
/// of {time, seq, slot, generation} index nodes. Cancelling bumps the slot's
/// generation, so stale heap nodes are recognised and discarded lazily at pop
/// time — cancel is O(1) and dispatch never touches a node-based container.
/// Handlers are EventFn (64-byte small-buffer callables), so after the slab
/// and heap warm up to the scenario's peak, scheduling an event performs no
/// heap allocation at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ev/sim/callable.h"
#include "ev/sim/time.h"

namespace ev::sim {

/// Identifies a scheduled event so it can be cancelled. Valid ids are
/// non-zero; kNoEvent never names a live event. Ids are fresh per schedule:
/// a slot's generation counter is folded into the id, so an id stays dead
/// even after its slot is reused.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Attribution tag for scheduled events. The simulator stores and forwards
/// the tag to its observer untouched; by convention instrumented subsystems
/// pass an obs::MetricsRegistry counter id so dispatches can be attributed
/// per source without any lookup. kUntagged means "no attribution".
using EventTag = std::uint32_t;
inline constexpr EventTag kUntagged = 0xffff'ffffu;

/// Selects the delay-relative schedule_periodic() overload: the first firing
/// happens \p delay after the current time. Prefer this over computing
/// `now() + delay` at the call site — an absolute first-activation time
/// written as a plain duration silently becomes a phase error once the
/// caller no longer runs at t=0.
struct After {
  Time delay;
};

/// Single-threaded discrete-event simulator with deterministic FIFO tie
/// breaking: events at equal timestamps fire in scheduling order.
///
/// Scheduling API contract (uniform across all schedule_* functions):
///  - every function returns a fresh non-zero EventId usable with cancel();
///  - activation times must not lie in the past (throws std::invalid_argument);
///  - one-shot events release their handler after dispatch, periodic events
///    repeat until cancel() (which removes all future repetitions);
///  - handlers may schedule and cancel freely, including their own id.
class Simulator {
 public:
  using Handler = EventFn;

  /// Observation hook. The kernel itself stays dependency-free: this
  /// interface is implemented by ev::obs (SimObserver) or by tests. All
  /// callbacks carry simulation-time quantities only, so anything derived
  /// from them is deterministic across same-seed runs. Callbacks must not
  /// mutate the simulator.
  class Observer {
   public:
    virtual ~Observer() = default;
    /// An event was enqueued at time \p now to fire at \p at.
    virtual void on_scheduled(EventId id, Time at, Time now,
                              std::size_t pending) noexcept = 0;
    /// An event fired at \p at after waiting since \p enqueued_at.
    /// \p pending counts live events after this dispatch; \p tag is the
    /// scheduling call's attribution tag.
    virtual void on_dispatched(EventId id, Time at, Time enqueued_at,
                               std::size_t pending, EventTag tag) noexcept = 0;
    /// A live event was cancelled.
    virtual void on_cancelled(EventId id, std::size_t pending) noexcept = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at zero.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules \p handler to fire once at absolute time \p at (>= now()).
  EventId schedule_at(Time at, Handler handler, EventTag tag = kUntagged);

  /// Schedules \p handler to fire once \p delay after the current time.
  EventId schedule_in(Time delay, Handler handler, EventTag tag = kUntagged);

  /// Schedules \p handler every \p period starting at absolute time \p first.
  EventId schedule_periodic(Time first, Time period, Handler handler,
                            EventTag tag = kUntagged);

  /// Schedules \p handler every \p period, first firing start.delay after the
  /// current time (delay-relative twin of the absolute-time overload).
  EventId schedule_periodic(After start, Time period, Handler handler,
                            EventTag tag = kUntagged);

  /// Cancels a pending (or periodic) event. Returns true if the id was alive.
  bool cancel(EventId id);

  /// Runs events with timestamp <= \p until; afterwards now() == \p until
  /// unless the queue drained earlier. Returns events dispatched.
  std::size_t run_until(Time until);

  /// Runs until the event queue is fully drained. Returns events dispatched.
  std::size_t run();

  /// Dispatches exactly one event if any is pending. Returns false when idle.
  bool step();

  /// Number of live events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return live_count_; }

  /// Total events dispatched since construction.
  [[nodiscard]] std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Attaches \p observer (nullptr detaches). The observer must outlive its
  /// attachment; when detached the kernel hot path pays one untaken branch.
  void set_observer(Observer* observer) noexcept { observer_ = observer; }
  [[nodiscard]] Observer* observer() const noexcept { return observer_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffff'ffffu;
  static constexpr std::size_t kChunkShift = 6;  // 64 slots per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  /// Arena record for one live (or recyclable) event.
  struct Slot {
    Handler handler;
    Time period{};
    Time enqueued{};  // when the current activation was queued (observer lag)
    EventTag tag = kUntagged;
    std::uint32_t generation = 1;  // bumped on release; stale heap-node filter
    std::uint32_t next_free = kNoSlot;
    bool periodic = false;
    bool live = false;
  };

  /// Heap node: index + generation handle into the slot arena.
  struct HeapNode {
    Time at;
    std::uint64_t seq;  // FIFO tie break for equal timestamps
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static constexpr EventId encode_id(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(gen) << 32) | (slot + 1u);
  }

  static constexpr bool earlier(const HeapNode& a, const HeapNode& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Slots live in fixed 64-entry chunks that never move once allocated, so
  /// a handler executing in place stays valid while nested scheduling grows
  /// the arena.
  [[nodiscard]] Slot& slot_at(std::uint32_t index) noexcept {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  EventId enqueue(Time at, Handler handler, bool periodic, Time period, EventTag tag);
  std::uint32_t acquire_slot();
  bool dispatch_next(Time limit);
  void heap_push(const HeapNode& node);
  void heap_pop() noexcept;
  /// Overwrites the minimum with \p node and restores heap order with a
  /// single sift-down. This is the periodic re-arm fast path: when the next
  /// activation is still the global minimum (a fast periodic dominating the
  /// queue, e.g. a 44.1 kHz bus frame), it settles in two comparisons.
  void heap_replace_top(const HeapNode& node) noexcept { sift_down(0, node); }
  void sift_down(std::size_t index, const HeapNode& node) noexcept;

  Time now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t live_count_ = 0;
  std::size_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t executing_ = kNoSlot;  // slot whose handler is running in place
  Observer* observer_ = nullptr;
  std::vector<HeapNode> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
};

/// Move-only RAII owner of a scheduled event: destruction (or assignment
/// over) cancels the event if it is still live. release() detaches and
/// returns the raw id for deliberate fire-and-forget scheduling. A handle
/// must not outlive the Simulator it points into.
class ScheduledHandle {
 public:
  ScheduledHandle() noexcept = default;
  /// Adopts \p id as scheduled on \p sim. Pass the schedule_* result
  /// directly: `ScheduledHandle h{sim, sim.schedule_periodic(...)};`.
  ScheduledHandle(Simulator& sim, EventId id) noexcept : sim_(&sim), id_(id) {}

  ScheduledHandle(ScheduledHandle&& other) noexcept
      : sim_(other.sim_), id_(other.id_) {
    other.sim_ = nullptr;
    other.id_ = kNoEvent;
  }
  ScheduledHandle& operator=(ScheduledHandle&& other) noexcept {
    if (this != &other) {
      cancel();
      sim_ = other.sim_;
      id_ = other.id_;
      other.sim_ = nullptr;
      other.id_ = kNoEvent;
    }
    return *this;
  }
  ScheduledHandle(const ScheduledHandle&) = delete;
  ScheduledHandle& operator=(const ScheduledHandle&) = delete;

  ~ScheduledHandle() { cancel(); }

  /// Cancels the owned event now (idempotent). Returns true if it was live.
  bool cancel() noexcept {
    if (sim_ == nullptr || id_ == kNoEvent) return false;
    const bool was_live = sim_->cancel(id_);
    sim_ = nullptr;
    id_ = kNoEvent;
    return was_live;
  }

  /// Detaches without cancelling and returns the raw id (fire-and-forget).
  EventId release() noexcept {
    const EventId id = id_;
    sim_ = nullptr;
    id_ = kNoEvent;
    return id;
  }

  /// The owned id, or kNoEvent after cancel()/release()/move-from.
  [[nodiscard]] EventId id() const noexcept { return id_; }

  /// True while this handle still owns a scheduled event. (The event may
  /// already have fired — one-shot dispatch does not notify handles; a
  /// subsequent cancel() is then a harmless no-op.)
  [[nodiscard]] bool active() const noexcept {
    return sim_ != nullptr && id_ != kNoEvent;
  }
  [[nodiscard]] explicit operator bool() const noexcept { return active(); }

 private:
  Simulator* sim_ = nullptr;
  EventId id_ = kNoEvent;
};

}  // namespace ev::sim
