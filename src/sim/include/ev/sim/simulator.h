/// \file simulator.h
/// Discrete-event simulation kernel. All networked and scheduled behaviour in
/// evsys (buses, ECUs, middleware dispatch, charging protocol) executes as
/// events on this kernel; continuous plant models (battery, motor, vehicle)
/// are advanced by fixed-step events layered on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ev/sim/time.h"

namespace ev::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulator with deterministic FIFO tie
/// breaking: events at equal timestamps fire in scheduling order.
class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at zero.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules \p handler to fire at absolute time \p at (>= now()).
  /// Returns an id usable with cancel().
  EventId schedule_at(Time at, Handler handler);

  /// Schedules \p handler to fire \p delay after the current time.
  EventId schedule_in(Time delay, Handler handler);

  /// Schedules \p handler every \p period starting at absolute time \p first;
  /// repeats until cancelled (cancel removes all future repetitions).
  EventId schedule_periodic(Time first, Time period, Handler handler);

  /// Cancels a pending (or periodic) event. Returns true if the id was alive.
  bool cancel(EventId id);

  /// Runs events with timestamp <= \p until; afterwards now() == \p until
  /// unless the queue drained earlier. Returns events dispatched.
  std::size_t run_until(Time until);

  /// Runs until the event queue is fully drained. Returns events dispatched.
  std::size_t run();

  /// Dispatches exactly one event if any is pending. Returns false when idle.
  bool step();

  /// Number of live events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

 private:
  struct Scheduled {
    Time at;
    std::uint64_t seq;  // FIFO tie break for equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Entry {
    Handler handler;
    Time period{};
    bool periodic = false;
  };

  EventId enqueue(Time at, Handler handler, bool periodic, Time period);

  Time now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  std::unordered_map<EventId, Entry> live_;
};

}  // namespace ev::sim
