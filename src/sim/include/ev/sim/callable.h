/// \file callable.h
/// EventFn: the kernel's type-erased `void()` callable with a fixed inline
/// buffer. Event handlers overwhelmingly capture a `this` pointer and a few
/// scalars; storing them inside the Scheduled slot itself (instead of behind
/// a `std::function` heap allocation) is what makes scheduling an event
/// allocation-free. Targets larger than the buffer fall back to the heap;
/// heap_constructions() exposes a process-wide count so stress tests can
/// prove the hot path stays allocation-free after warm-up.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace ev::sim {

/// Move- and copy-constructible owning wrapper for any `void()` callable.
/// Targets up to kInlineBytes (with fundamental alignment) are stored
/// inline; larger ones are heap-allocated. Copyability is required because
/// periodic events hand a copy of their handler to each firing (the slab may
/// grow, or the handler may cancel its own slot, while the copy runs).
class EventFn {
 public:
  /// Inline capacity. 64 bytes covers a captured `this` plus a moved-in
  /// network Frame — the largest handler the stack schedules on a hot path.
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) : ops_(&ops_for<std::decay_t<F>>) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    } else {
      heap_ = new Fn(std::forward<F>(f));
      heap_count().fetch_add(1, std::memory_order_relaxed);
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ == nullptr) return;
    if (ops_->inline_stored) {
      ops_->relocate(buf_, other.buf_);
    } else {
      heap_ = other.heap_;
      other.heap_ = nullptr;
    }
    other.ops_ = nullptr;
  }

  EventFn(const EventFn& other) : ops_(other.ops_) {
    if (ops_ == nullptr) return;
    if (ops_->inline_stored) {
      ops_->copy(buf_, other.buf_);
    } else {
      heap_ = ops_->copy_heap(other.heap_);
      heap_count().fetch_add(1, std::memory_order_relaxed);
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ::new (static_cast<void*>(this)) EventFn(std::move(other));
    }
    return *this;
  }

  EventFn& operator=(const EventFn& other) {
    if (this != &other) {
      EventFn copy(other);
      reset();
      ::new (static_cast<void*>(this)) EventFn(std::move(copy));
    }
    return *this;
  }

  ~EventFn() { reset(); }

  /// True when a target is held.
  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the target (which must be held).
  void operator()() { ops_->invoke(target()); }

  /// Drops the target (no-op when empty).
  void reset() noexcept {
    if (ops_ == nullptr) return;
    ops_->destroy(target());
    if (!ops_->inline_stored) ::operator delete(heap_);
    ops_ = nullptr;
  }

  /// Targets constructed on the heap (too large for the inline buffer) since
  /// process start. A flat curve over an event storm proves zero per-event
  /// allocation in the kernel.
  [[nodiscard]] static std::uint64_t heap_constructions() noexcept {
    return heap_count().load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* t);
    void (*relocate)(void* dst_buf, void* src_buf) noexcept;  // move + destroy src
    void (*copy)(void* dst_buf, const void* src_buf);
    void* (*copy_heap)(const void* src_target);
    void (*destroy)(void* t) noexcept;
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops make_ops() noexcept {
    return Ops{
        [](void* t) { (*static_cast<Fn*>(t))(); },
        [](void* dst, void* src) noexcept {
          Fn* s = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* dst, const void* src) { ::new (dst) Fn(*static_cast<const Fn*>(src)); },
        [](const void* src) -> void* { return new Fn(*static_cast<const Fn*>(src)); },
        [](void* t) noexcept { static_cast<Fn*>(t)->~Fn(); },
        fits_inline<Fn>()};
  }

  template <typename Fn>
  static inline const Ops ops_for = make_ops<Fn>();

  static std::atomic<std::uint64_t>& heap_count() noexcept {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }

  [[nodiscard]] void* target() noexcept {
    return ops_->inline_stored ? static_cast<void*>(buf_) : heap_;
  }
  [[nodiscard]] const void* target() const noexcept {
    return ops_->inline_stored ? static_cast<const void*>(buf_) : heap_;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace ev::sim
