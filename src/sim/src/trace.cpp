#include "ev/sim/trace.h"

#include <algorithm>
#include <stdexcept>

namespace ev::sim {

double Trace::sample_at(Time at) const {
  if (points_.empty()) throw std::out_of_range("Trace::sample_at on empty trace");
  if (at <= points_.front().at) return points_.front().value;
  if (at >= points_.back().at) return points_.back().value;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), at,
      [](const TracePoint& p, Time t) { return p.at < t; });
  const TracePoint& hi = *it;
  const TracePoint& lo = *(it - 1);
  if (hi.at == lo.at) return hi.value;
  const double frac = static_cast<double>((at - lo.at).count_ns()) /
                      static_cast<double>((hi.at - lo.at).count_ns());
  return lo.value + (hi.value - lo.value) * frac;
}

}  // namespace ev::sim
