#include "ev/sim/simulator.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace ev::sim {

std::string Time::to_string() const {
  std::ostringstream out;
  const std::int64_t n = ns_;
  if (n % 1'000'000'000 == 0)
    out << n / 1'000'000'000 << " s";
  else if (n % 1'000'000 == 0)
    out << n / 1'000'000 << " ms";
  else if (n % 1'000 == 0)
    out << n / 1'000 << " us";
  else
    out << n << " ns";
  return out.str();
}

EventId Simulator::enqueue(Time at, Handler handler, bool periodic, Time period,
                           EventTag tag) {
  if (at < now_) throw std::invalid_argument("Simulator: cannot schedule in the past");
  const EventId id = next_id_++;
  queue_.push(Scheduled{at, next_seq_++, id});
  live_.emplace(id, Entry{std::move(handler), period, now_, tag, periodic});
  if (observer_) [[unlikely]]
    observer_->on_scheduled(id, at, now_, live_.size());
  return id;
}

EventId Simulator::schedule_at(Time at, Handler handler, EventTag tag) {
  return enqueue(at, std::move(handler), /*periodic=*/false, Time{}, tag);
}

EventId Simulator::schedule_in(Time delay, Handler handler, EventTag tag) {
  return enqueue(now_ + delay, std::move(handler), /*periodic=*/false, Time{}, tag);
}

EventId Simulator::schedule_periodic(Time first, Time period, Handler handler,
                                     EventTag tag) {
  if (period <= Time{}) throw std::invalid_argument("Simulator: period must be positive");
  return enqueue(first, std::move(handler), /*periodic=*/true, period, tag);
}

EventId Simulator::schedule_periodic(After start, Time period, Handler handler,
                                     EventTag tag) {
  return schedule_periodic(now_ + start.delay, period, std::move(handler), tag);
}

bool Simulator::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;
  if (observer_) [[unlikely]]
    observer_->on_cancelled(id, live_.size());
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Scheduled top = queue_.top();
    auto it = live_.find(top.id);
    if (it == live_.end()) {
      queue_.pop();  // cancelled event; discard lazily
      continue;
    }
    queue_.pop();
    now_ = top.at;
    ++dispatched_;
    if (it->second.periodic) {
      // Re-arm before dispatch so the handler may cancel its own repetition.
      const Time next = top.at + it->second.period;
      if (observer_) [[unlikely]] {
        observer_->on_dispatched(top.id, top.at, it->second.enqueued, live_.size(),
                                 it->second.tag);
        it->second.enqueued = now_;
      }
      Handler handler = it->second.handler;
      queue_.push(Scheduled{next, next_seq_++, top.id});
      handler();
    } else {
      if (observer_) [[unlikely]]
        observer_->on_dispatched(top.id, top.at, it->second.enqueued,
                                 live_.size() - 1, it->second.tag);
      Handler handler = std::move(it->second.handler);
      live_.erase(it);
      handler();
    }
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(Time until) {
  std::size_t dispatched = 0;
  while (!queue_.empty()) {
    const Scheduled& top = queue_.top();
    if (!live_.contains(top.id)) {
      queue_.pop();
      continue;
    }
    if (top.at > until) break;
    if (step()) ++dispatched;
  }
  if (now_ < until) now_ = until;
  return dispatched;
}

std::size_t Simulator::run() {
  std::size_t dispatched = 0;
  while (step()) ++dispatched;
  return dispatched;
}

}  // namespace ev::sim
