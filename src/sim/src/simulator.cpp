#include "ev/sim/simulator.h"

#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ev::sim {

std::string Time::to_string() const {
  std::ostringstream out;
  const std::int64_t n = ns_;
  if (n % 1'000'000'000 == 0)
    out << n / 1'000'000'000 << " s";
  else if (n % 1'000'000 == 0)
    out << n / 1'000'000 << " ms";
  else if (n % 1'000 == 0)
    out << n / 1'000 << " us";
  else
    out << n << " ns";
  return out.str();
}

namespace {
constexpr Time kTimeMax = Time::ns(std::numeric_limits<std::int64_t>::max());
}  // namespace

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slot_at(index).next_free;
    return index;
  }
  if (slot_count_ == chunks_.size() * kChunkSize)
    chunks_.emplace_back(std::make_unique<Slot[]>(kChunkSize));
  return static_cast<std::uint32_t>(slot_count_++);
}

// Sift helpers move a "hole" instead of swapping whole nodes: each level
// costs one comparison and one 24-byte move, and the carried node is written
// exactly once at its final position.
void Simulator::heap_push(const HeapNode& node) {
  std::size_t i = heap_.size();
  heap_.push_back(node);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

__attribute__((always_inline)) inline void Simulator::sift_down(std::size_t index,
                                                                const HeapNode& node) noexcept {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * index + 1;
    if (child >= n) break;
    const std::size_t right = child + 1;
    if (right < n && earlier(heap_[right], heap_[child])) child = right;
    if (!earlier(heap_[child], node)) break;
    heap_[index] = heap_[child];
    index = child;
  }
  heap_[index] = node;
}

void Simulator::heap_pop() noexcept {
  const HeapNode last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, last);
}

EventId Simulator::enqueue(Time at, Handler handler, bool periodic, Time period,
                           EventTag tag) {
  if (at < now_) throw std::invalid_argument("Simulator: cannot schedule in the past");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slot_at(index);
  slot.handler = std::move(handler);
  slot.period = period;
  slot.enqueued = now_;
  slot.tag = tag;
  slot.periodic = periodic;
  slot.live = true;
  ++live_count_;
  const EventId id = encode_id(index, slot.generation);
  heap_push(HeapNode{at, next_seq_++, index, slot.generation});
  if (observer_) [[unlikely]]
    observer_->on_scheduled(id, at, now_, live_count_);
  return id;
}

EventId Simulator::schedule_at(Time at, Handler handler, EventTag tag) {
  return enqueue(at, std::move(handler), /*periodic=*/false, Time{}, tag);
}

EventId Simulator::schedule_in(Time delay, Handler handler, EventTag tag) {
  return enqueue(now_ + delay, std::move(handler), /*periodic=*/false, Time{}, tag);
}

EventId Simulator::schedule_periodic(Time first, Time period, Handler handler,
                                     EventTag tag) {
  if (period <= Time{}) throw std::invalid_argument("Simulator: period must be positive");
  return enqueue(first, std::move(handler), /*periodic=*/true, period, tag);
}

EventId Simulator::schedule_periodic(After start, Time period, Handler handler,
                                     EventTag tag) {
  return schedule_periodic(now_ + start.delay, period, std::move(handler), tag);
}

bool Simulator::cancel(EventId id) {
  const std::uint64_t low = id & 0xffff'ffffu;
  if (low == 0) return false;
  const std::uint32_t index = static_cast<std::uint32_t>(low - 1u);
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slot_count_) return false;
  Slot& slot = slot_at(index);
  if (!slot.live || slot.generation != generation) return false;
  slot.live = false;
  ++slot.generation;  // invalidates the id and any heap nodes still queued
  --live_count_;
  if (index != executing_) {
    // Storage release is deferred for the executing slot: destroying the
    // closure that is cancelling itself mid-call would free live stack state.
    // dispatch_next() finishes the release after the handler returns.
    slot.handler.reset();
    slot.next_free = free_head_;
    free_head_ = index;
  }
  if (observer_) [[unlikely]]
    observer_->on_cancelled(id, live_count_);
  return true;
}

/// Dispatches the earliest live event whose activation is <= \p limit.
/// Returns false when the heap is drained or only later events remain.
bool Simulator::dispatch_next(Time limit) {
  while (!heap_.empty()) {
    const HeapNode top = heap_.front();
    Slot& slot = slot_at(top.slot);
    if (!slot.live || slot.generation != top.generation) {
      heap_pop();  // cancelled event; discard lazily
      continue;
    }
    if (top.at > limit) return false;
    now_ = top.at;
    ++dispatched_;
    if (slot.periodic) {
      // Re-arm before dispatch so the handler may cancel its own repetition.
      const Time next = top.at + slot.period;
      if (observer_) [[unlikely]] {
        observer_->on_dispatched(encode_id(top.slot, top.generation), top.at,
                                 slot.enqueued, live_count_, slot.tag);
        slot.enqueued = now_;
      }
      heap_replace_top(HeapNode{next, next_seq_++, top.slot, top.generation});
    } else {
      if (observer_) [[unlikely]]
        observer_->on_dispatched(encode_id(top.slot, top.generation), top.at,
                                 slot.enqueued, live_count_ - 1, slot.tag);
      heap_pop();
      // Logical release before the call: the handler sees itself as dead
      // (pending() excludes it, cancelling its own id is a no-op) and the id
      // turns stale, but the closure's storage is reclaimed only after the
      // call below.
      slot.live = false;
      ++slot.generation;
      --live_count_;
    }
    // Invoke in place — no per-dispatch copy of the callable. Safe because
    // slot chunks never move when nested scheduling grows the arena, and
    // cancel() defers the executing slot's storage release.
    executing_ = top.slot;
    slot.handler();
    executing_ = kNoSlot;
    if (!slot.live) {  // one-shot fired, or a periodic cancelled itself
      slot.handler.reset();
      slot.next_free = free_head_;
      free_head_ = top.slot;
    }
    return true;
  }
  return false;
}

bool Simulator::step() { return dispatch_next(kTimeMax); }

std::size_t Simulator::run_until(Time until) {
  std::size_t dispatched = 0;
  while (dispatch_next(until)) ++dispatched;
  if (now_ < until) now_ = until;
  return dispatched;
}

std::size_t Simulator::run() {
  std::size_t dispatched = 0;
  while (dispatch_next(kTimeMax)) ++dispatched;
  return dispatched;
}

}  // namespace ev::sim
