#include "ev/obs/sim_observer.h"

#include <string>

namespace ev::obs {

SimObserver::SimObserver(MetricsRegistry& registry)
    : registry_(&registry),
      scheduled_(registry.counter("sim.events_scheduled")),
      dispatched_(registry.counter("sim.events_dispatched")),
      cancelled_(registry.counter("sim.events_cancelled")),
      delay_us_(registry.histogram("sim.dispatch_delay_us", 0.0, 1e6, 64)),
      depth_peak_(registry.gauge("sim.queue_depth.peak")) {}

sim::EventTag SimObserver::source(std::string_view name) {
  return registry_->counter("sim.dispatched." + std::string(name));
}

void SimObserver::on_scheduled(sim::EventId, sim::Time, sim::Time,
                               std::size_t pending) noexcept {
  registry_->add(scheduled_);
  registry_->set_max(depth_peak_, static_cast<double>(pending));
}

void SimObserver::on_dispatched(sim::EventId, sim::Time at, sim::Time enqueued_at,
                                std::size_t, sim::EventTag tag) noexcept {
  registry_->add(dispatched_);
  registry_->observe(delay_us_, (at - enqueued_at).to_us());
  if (tag != sim::kUntagged) registry_->add(tag);
}

void SimObserver::on_cancelled(sim::EventId, std::size_t) noexcept {
  registry_->add(cancelled_);
}

}  // namespace ev::obs
