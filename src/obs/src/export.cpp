#include "ev/obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <vector>

namespace ev::obs {

namespace {

/// JSON/CSV-safe rendering of an interned name (quotes, backslashes, and
/// control characters escaped; names are plain identifiers in practice).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void write_histogram_json(const MetricsRegistry& reg, MetricId id, std::ostream& out) {
  const util::RunningStats& st = reg.histogram_stats(id);
  const util::Histogram& bins = reg.histogram_bins(id);
  // Empty stats report min=+inf/max=-inf; render those as 0 so the JSON
  // stays standard (and matches the historical empty-histogram output).
  const double min = st.count() > 0 ? st.min() : 0.0;
  const double max = st.count() > 0 ? st.max() : 0.0;
  out << "{\"count\":" << st.count() << ",\"mean\":" << format_double(st.mean())
      << ",\"stddev\":" << format_double(st.stddev())
      << ",\"min\":" << format_double(min) << ",\"max\":" << format_double(max)
      << ",\"sum\":" << format_double(st.sum())
      << ",\"nan\":" << bins.nan_count() << ",\"bins\":[";
  for (std::size_t i = 0; i < bins.bins(); ++i) {
    if (i) out << ',';
    out << bins.bin_count(i);
  }
  out << "]}";
}

std::vector<MetricId> ids_of_kind(const MetricsRegistry& reg, MetricKind kind) {
  std::vector<MetricId> ids;
  for (MetricId id = 0; id < reg.size(); ++id)
    if (reg.kind(id) == kind) ids.push_back(id);
  return ids;
}

}  // namespace

std::string format_double(double value) {
  // Shortest decimal form that parses back to the same double: deterministic
  // output without the noise of a fixed 17-digit rendering.
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

void write_metrics_json(const MetricsRegistry& reg, std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const MetricId id : ids_of_kind(reg, MetricKind::kCounter)) {
    out << (first ? "" : ",") << "\n    \"" << escape(reg.name(id))
        << "\": " << reg.counter_value(id);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const MetricId id : ids_of_kind(reg, MetricKind::kGauge)) {
    out << (first ? "" : ",") << "\n    \"" << escape(reg.name(id))
        << "\": " << format_double(reg.gauge_value(id));
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const MetricId id : ids_of_kind(reg, MetricKind::kHistogram)) {
    out << (first ? "" : ",") << "\n    \"" << escape(reg.name(id)) << "\": ";
    write_histogram_json(reg, id, out);
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void write_metrics_csv(const MetricsRegistry& reg, std::ostream& out) {
  out << "kind,name,field,value\n";
  for (MetricId id = 0; id < reg.size(); ++id) {
    const std::string name = escape(reg.name(id));
    switch (reg.kind(id)) {
      case MetricKind::kCounter:
        out << "counter," << name << ",value," << reg.counter_value(id) << '\n';
        break;
      case MetricKind::kGauge:
        out << "gauge," << name << ",value," << format_double(reg.gauge_value(id))
            << '\n';
        break;
      case MetricKind::kHistogram: {
        const util::RunningStats& st = reg.histogram_stats(id);
        const double min = st.count() > 0 ? st.min() : 0.0;
        const double max = st.count() > 0 ? st.max() : 0.0;
        out << "histogram," << name << ",count," << st.count() << '\n';
        out << "histogram," << name << ",mean," << format_double(st.mean()) << '\n';
        out << "histogram," << name << ",stddev," << format_double(st.stddev()) << '\n';
        out << "histogram," << name << ",min," << format_double(min) << '\n';
        out << "histogram," << name << ",max," << format_double(max) << '\n';
        out << "histogram," << name << ",sum," << format_double(st.sum()) << '\n';
        out << "histogram," << name << ",nan," << reg.histogram_bins(id).nan_count()
            << '\n';
        break;
      }
    }
  }
}

void write_chrome_trace(const TraceLog& trace, std::ostream& out) {
  out << "[\n";
  bool first = true;
  for (const Span& s : trace.spans()) {
    if (s.end_ns < s.begin_ns) continue;  // open span: no complete event
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"" << escape(trace.names().name(s.name)) << "\",\"cat\":\""
        << escape(trace.names().name(s.category))
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":"
        << format_double(static_cast<double>(s.begin_ns) * 1e-3)
        << ",\"dur\":" << format_double(static_cast<double>(s.end_ns - s.begin_ns) * 1e-3);
    if (s.attr_count > 0) {
      out << ",\"args\":{";
      for (std::uint8_t i = 0; i < s.attr_count; ++i) {
        if (i) out << ',';
        out << '"' << escape(trace.names().name(s.attrs[i].key))
            << "\":" << format_double(s.attrs[i].value);
      }
      out << '}';
    }
    out << '}';
  }
  out << "\n]\n";
}

namespace {
template <typename Writer, typename Source>
bool write_file(const Source& source, const std::string& path, Writer writer) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  writer(source, out);
  return static_cast<bool>(out);
}
}  // namespace

bool write_metrics_json_file(const MetricsRegistry& reg, const std::string& path) {
  return write_file(reg, path, [](const MetricsRegistry& r, std::ostream& o) {
    write_metrics_json(r, o);
  });
}

bool write_metrics_csv_file(const MetricsRegistry& reg, const std::string& path) {
  return write_file(reg, path, [](const MetricsRegistry& r, std::ostream& o) {
    write_metrics_csv(r, o);
  });
}

bool write_chrome_trace_file(const TraceLog& trace, const std::string& path) {
  return write_file(trace, path, [](const TraceLog& t, std::ostream& o) {
    write_chrome_trace(t, o);
  });
}

}  // namespace ev::obs
