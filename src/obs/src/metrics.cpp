#include "ev/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ev::obs {

MetricId MetricsRegistry::register_metric(std::string_view name, MetricKind kind) {
  if (names_.contains(name)) {
    const MetricId id = names_.intern(name);
    if (entries_[id].kind != kind)
      throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                  "' already registered with another kind");
    return id;
  }
  const MetricId id = names_.intern(name);
  entries_.push_back(Entry{kind, 0, 0.0, 0});
  return id;
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return register_metric(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                    std::size_t bins) {
  const bool existed = names_.contains(name);
  const MetricId id = register_metric(name, MetricKind::kHistogram);
  if (!existed) {
    entries_[id].histogram_index = static_cast<std::uint32_t>(histograms_.size());
    histograms_.push_back(HistogramData{util::Histogram(lo, hi, bins), {}});
  }
  return id;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (MetricId from = 0; from < other.size(); ++from) {
    const std::string& name = other.name(from);
    const Entry& source = other.entries_[from];
    switch (source.kind) {
      case MetricKind::kCounter:
        entries_[counter(name)].count += source.count;
        break;
      case MetricKind::kGauge: {
        // A gauge new to this registry copies the shard's value: its fresh
        // 0.0 must not clip a negative peak via the max below.
        const bool known = names_.find(name) != kInvalidId;
        Entry& dest = entries_[gauge(name)];
        dest.gauge = known ? std::max(dest.gauge, source.gauge) : source.gauge;
        break;
      }
      case MetricKind::kHistogram: {
        const HistogramData& src = other.histograms_[source.histogram_index];
        const MetricId id = histogram(name, src.bins.lo(), src.bins.hi(),
                                      src.bins.bins());
        HistogramData& dest = histograms_[entries_[id].histogram_index];
        dest.bins.merge(src.bins);  // throws on a shape mismatch
        dest.stats.merge(src.stats);
        break;
      }
    }
  }
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) noexcept {
  if (id >= entries_.size() || entries_[id].kind != MetricKind::kCounter) return;
  entries_[id].count += delta;
}

void MetricsRegistry::set(MetricId id, double value) noexcept {
  if (id >= entries_.size() || entries_[id].kind != MetricKind::kGauge) return;
  entries_[id].gauge = value;
}

void MetricsRegistry::set_max(MetricId id, double value) noexcept {
  if (id >= entries_.size() || entries_[id].kind != MetricKind::kGauge) return;
  if (value > entries_[id].gauge) entries_[id].gauge = value;
}

void MetricsRegistry::observe(MetricId id, double value) noexcept {
  if (id >= entries_.size() || entries_[id].kind != MetricKind::kHistogram) return;
  HistogramData& h = histograms_[entries_[id].histogram_index];
  h.bins.add(value);  // NaN lands in the histogram's counted nan bucket
  if (!std::isnan(value)) h.stats.add(value);
}

const MetricsRegistry::Entry& MetricsRegistry::checked(MetricId id,
                                                       MetricKind kind) const {
  if (id >= entries_.size()) throw std::out_of_range("MetricsRegistry: unknown id");
  if (entries_[id].kind != kind)
    throw std::invalid_argument("MetricsRegistry: kind mismatch for '" +
                                names_.name(id) + "'");
  return entries_[id];
}

std::uint64_t MetricsRegistry::counter_value(MetricId id) const {
  return checked(id, MetricKind::kCounter).count;
}

double MetricsRegistry::gauge_value(MetricId id) const {
  return checked(id, MetricKind::kGauge).gauge;
}

const util::RunningStats& MetricsRegistry::histogram_stats(MetricId id) const {
  return histograms_[checked(id, MetricKind::kHistogram).histogram_index].stats;
}

const util::Histogram& MetricsRegistry::histogram_bins(MetricId id) const {
  return histograms_[checked(id, MetricKind::kHistogram).histogram_index].bins;
}

MetricKind MetricsRegistry::kind(MetricId id) const {
  if (id >= entries_.size()) throw std::out_of_range("MetricsRegistry: unknown id");
  return entries_[id].kind;
}

}  // namespace ev::obs
