#include "ev/obs/span_trace.h"

namespace ev::obs {

SpanId TraceLog::begin(MetricId name, MetricId category, std::int64_t begin_ns) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return kInvalidId;
  }
  Span s;
  s.name = name;
  s.category = category;
  s.begin_ns = begin_ns;
  spans_.push_back(s);
  return static_cast<SpanId>(spans_.size() - 1);
}

void TraceLog::attr(SpanId id, MetricId key, double value) noexcept {
  if (id >= spans_.size()) return;
  Span& s = spans_[id];
  if (s.attr_count >= s.attrs.size()) return;
  s.attrs[s.attr_count++] = SpanAttr{key, value};
}

void TraceLog::end(SpanId id, std::int64_t end_ns) noexcept {
  if (id >= spans_.size()) return;
  if (end_ns >= spans_[id].begin_ns) spans_[id].end_ns = end_ns;
}

SpanId TraceLog::complete(MetricId name, MetricId category, std::int64_t begin_ns,
                          std::int64_t end_ns) {
  const SpanId id = begin(name, category, begin_ns);
  end(id, end_ns);
  return id;
}

}  // namespace ev::obs
