/// \file metric_id.h
/// Cheap interned identifiers for the observability layer. Instrument names
/// (metric names, span names, attribute keys) are registered once, up front,
/// and referred to afterwards by a dense integer id — so the hot paths of the
/// simulator, middleware, and bus models never touch a string or allocate.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ev::obs {

/// Dense id of an interned name. Ids are indices into the owning interner's
/// table, assigned in registration order starting at 0.
using MetricId = std::uint32_t;

/// Sentinel returned where no id applies (unset span attribute, full sink).
inline constexpr MetricId kInvalidId = 0xffff'ffffu;

/// String-to-dense-id table. Interning the same name twice returns the same
/// id; lookups by id are O(1). Registration is the cold path and may
/// allocate; everything downstream carries only the id.
class Interner {
 public:
  Interner() = default;
  // Move-only: names_ points into index_'s map nodes, which survive a move
  // but would dangle into the source after a memberwise copy.
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Returns the id of \p name, registering it on first use.
  MetricId intern(std::string_view name) {
    const auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const MetricId id = static_cast<MetricId>(names_.size());
    const auto inserted = index_.emplace(std::string(name), id);
    names_.push_back(&inserted.first->first);
    return id;
  }

  /// Name of \p id; throws std::out_of_range for unknown ids.
  [[nodiscard]] const std::string& name(MetricId id) const {
    if (id >= names_.size()) throw std::out_of_range("Interner: unknown id");
    return *names_[id];
  }

  /// True when \p name has been interned already.
  [[nodiscard]] bool contains(std::string_view name) const {
    return index_.find(name) != index_.end();
  }

  /// Id of \p name, or kInvalidId when it was never interned (non-throwing
  /// lookup for readers that probe optional instruments).
  [[nodiscard]] MetricId find(std::string_view name) const {
    const auto it = index_.find(name);
    return it != index_.end() ? it->second : kInvalidId;
  }

  /// Number of interned names.
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  // Heterogeneous lookup avoids a temporary std::string per intern() probe;
  // map nodes give the stable addresses names_ points into.
  std::map<std::string, MetricId, std::less<>> index_;
  std::vector<const std::string*> names_;
};

}  // namespace ev::obs
