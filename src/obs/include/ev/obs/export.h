/// \file export.h
/// Machine-readable exporters for the observability layer. Metric snapshots
/// render to JSON (one object; counters/gauges/histograms sections) and CSV
/// (`kind,name,field,value` rows); span traces render to the Chrome
/// `about:tracing` / Perfetto JSON array format with one complete event per
/// line. All floating-point values are printed with a fixed round-trippable
/// format, so two identical (same-seed) runs export byte-identical files.
#pragma once

#include <iosfwd>
#include <string>

#include "ev/obs/metrics.h"
#include "ev/obs/span_trace.h"

namespace ev::obs {

/// Renders \p value the way every exporter prints doubles: shortest
/// round-trippable decimal form ("%.17g" trimmed), deterministic across runs.
[[nodiscard]] std::string format_double(double value);

/// Writes one JSON object: {"counters":{...},"gauges":{...},"histograms":
/// {name:{count,mean,stddev,min,max,sum,lo,hi,bins:[...]}}}. Metrics appear
/// in registration order.
void write_metrics_json(const MetricsRegistry& registry, std::ostream& out);

/// Writes `kind,name,field,value` CSV rows (header included), one row per
/// scalar: counters/gauges one row, histograms one row per summary field.
void write_metrics_csv(const MetricsRegistry& registry, std::ostream& out);

/// Writes the Chrome about:tracing JSON array: one "X" (complete) event per
/// closed span — name, cat, ts/dur in microseconds, attributes as args.
/// Open spans are skipped.
void write_chrome_trace(const TraceLog& trace, std::ostream& out);

/// File-writing convenience wrappers; return false when the file cannot be
/// opened.
bool write_metrics_json_file(const MetricsRegistry& registry, const std::string& path);
bool write_metrics_csv_file(const MetricsRegistry& registry, const std::string& path);
bool write_chrome_trace_file(const TraceLog& trace, const std::string& path);

}  // namespace ev::obs
