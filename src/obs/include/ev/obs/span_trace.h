/// \file span_trace.h
/// Structured event tracing for the observability layer: spans carry a begin
/// and end timestamp in simulation time, an interned name and category, and
/// up to four key/value attributes stored inline. Memory is bounded by a
/// fixed capacity chosen at construction — when the sink is full, further
/// spans are counted as dropped instead of recorded, so tracing can stay
/// attached to long simulations. Completed logs export to the Chrome
/// `about:tracing` JSON format (see export.h).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "ev/obs/metric_id.h"

namespace ev::obs {

/// Index of a span within the log; kInvalidId when the sink was full.
using SpanId = std::uint32_t;

/// One key/value annotation of a span. Keys are interned; values are scalar
/// so recording never allocates.
struct SpanAttr {
  MetricId key = kInvalidId;
  double value = 0.0;
};

/// A recorded interval. end_ns < begin_ns marks a span still open.
struct Span {
  MetricId name = kInvalidId;      ///< Interned span label.
  MetricId category = kInvalidId;  ///< Interned category (trace viewer lane).
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = -1;
  std::array<SpanAttr, 4> attrs{};
  std::uint8_t attr_count = 0;
};

/// Bounded append-only span sink.
class TraceLog {
 public:
  /// \p capacity bounds the number of retained spans.
  explicit TraceLog(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  /// Interns \p s for use as a span name, category, or attribute key.
  MetricId intern(std::string_view s) { return names_.intern(s); }

  /// Opens a span at \p begin_ns. Returns kInvalidId (and counts a drop)
  /// when the sink is full; the other members tolerate that id.
  SpanId begin(MetricId name, MetricId category, std::int64_t begin_ns);

  /// Attaches key/value to an open span; ignored beyond 4 attributes.
  void attr(SpanId id, MetricId key, double value) noexcept;

  /// Closes span \p id at \p end_ns (>= its begin).
  void end(SpanId id, std::int64_t end_ns) noexcept;

  /// Records an already-completed interval in one call.
  SpanId complete(MetricId name, MetricId category, std::int64_t begin_ns,
                  std::int64_t end_ns);

  /// Recorded spans in begin order.
  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }
  /// Spans rejected because the sink was at capacity.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// The name table (for exporters).
  [[nodiscard]] const Interner& names() const noexcept { return names_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Forgets all recorded spans (names stay interned).
  void clear() noexcept {
    spans_.clear();
    dropped_ = 0;
  }

 private:
  Interner names_;
  std::vector<Span> spans_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
};

}  // namespace ev::obs
