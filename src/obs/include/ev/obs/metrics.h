/// \file metrics.h
/// The metric plane of the observability layer: counters, gauges, and
/// bounded-memory histograms in one registry. Registration (cold) hands out
/// interned MetricIds; updates (hot) are branch-plus-array-index and never
/// allocate, so instrumented simulator/middleware/bus paths stay cheap and
/// deterministic. All values derive from simulation state, never wall-clock,
/// which keeps exported snapshots byte-identical across same-seed runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ev/obs/metric_id.h"
#include "ev/util/stats.h"

namespace ev::obs {

/// What a registered metric measures.
enum class MetricKind : std::uint8_t {
  kCounter,    ///< Monotonic event count (frames delivered, events fired).
  kGauge,      ///< Last-written scalar (utilization, backlog, budget use).
  kHistogram,  ///< Value distribution with fixed bins + streaming stats.
};

/// Registry of named metrics. Ids are stable for the registry's lifetime and
/// shared across kinds (one id space); re-registering a name returns the
/// existing id and must use the same kind.
///
/// Thread-safety: none — a registry is single-writer by design, so the hot
/// update paths stay branch-plus-index with no synchronization. Parallel
/// workloads (the campaign runner, sharded benches) give every worker its
/// own private registry and fold the shards together afterwards with
/// merge(), on one thread, in a fixed order.
class MetricsRegistry {
 public:
  /// Folds \p other into this registry, matching metrics by name: counters
  /// sum, gauges max-merge (the peak-tracking semantics of set_max), and
  /// histograms combine bucket-wise with their streaming stats joined via
  /// parallel Welford. Metrics unknown here are registered first (in
  /// \p other's registration order). Throws std::invalid_argument when a
  /// name is registered with a different kind or histogram shape.
  ///
  /// The fold is order-independent: merge(A, B) and merge(B, A) read back
  /// identically metric-for-metric (ids may differ when the operands
  /// registered different name sets in different orders).
  void merge(const MetricsRegistry& other);

  /// Registers (or finds) the counter \p name.
  MetricId counter(std::string_view name);
  /// Registers (or finds) the gauge \p name.
  MetricId gauge(std::string_view name);
  /// Registers (or finds) a histogram over [lo, hi) with \p bins buckets;
  /// out-of-range observations clamp to the boundary buckets (bounded
  /// memory regardless of the observed range) and NaN observations land in
  /// the histogram's counted nan bucket without touching the streaming
  /// stats.
  MetricId histogram(std::string_view name, double lo, double hi,
                     std::size_t bins = 32);

  // --- hot-path updates (no-ops on kInvalidId or a kind mismatch) ----------
  /// counter += delta.
  void add(MetricId id, std::uint64_t delta = 1) noexcept;
  /// gauge = value.
  void set(MetricId id, double value) noexcept;
  /// gauge = max(gauge, value) — peak tracking (queue depth, backlog).
  void set_max(MetricId id, double value) noexcept;
  /// Adds one observation to a histogram.
  void observe(MetricId id, double value) noexcept;

  // --- readout -------------------------------------------------------------
  [[nodiscard]] std::uint64_t counter_value(MetricId id) const;
  [[nodiscard]] double gauge_value(MetricId id) const;
  /// Streaming mean/min/max/stddev over everything observe()d.
  [[nodiscard]] const util::RunningStats& histogram_stats(MetricId id) const;
  /// The binned distribution.
  [[nodiscard]] const util::Histogram& histogram_bins(MetricId id) const;

  /// Number of registered metrics; ids are 0..size()-1 in registration order.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::string& name(MetricId id) const { return names_.name(id); }
  [[nodiscard]] MetricKind kind(MetricId id) const;
  /// True when \p name is already registered (any kind).
  [[nodiscard]] bool contains(std::string_view name) const {
    return names_.contains(name);
  }
  /// Id of \p name (any kind), or kInvalidId when not registered.
  [[nodiscard]] MetricId find(std::string_view name) const {
    return names_.find(name);
  }

 private:
  struct HistogramData {
    util::Histogram bins;
    util::RunningStats stats;
  };
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t count = 0;             // kCounter
    double gauge = 0.0;                  // kGauge
    std::uint32_t histogram_index = 0;   // kHistogram -> histograms_
  };

  MetricId register_metric(std::string_view name, MetricKind kind);
  [[nodiscard]] const Entry& checked(MetricId id, MetricKind kind) const;

  Interner names_;
  std::vector<Entry> entries_;
  std::vector<HistogramData> histograms_;
};

}  // namespace ev::obs
