/// \file sim_observer.h
/// Standard kernel instrumentation: an ev::sim::Simulator::Observer that
/// feeds a MetricsRegistry. Attached once per simulator it answers the
/// cross-cutting questions benches used to answer with ad-hoc counters: how
/// many events ran, how long they sat in the queue (sim time), how deep the
/// queue grew, and which source scheduled them (via EventTag attribution).
#pragma once

#include <cstdint>
#include <string_view>

#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"

namespace ev::obs {

/// Records simulator activity into a MetricsRegistry. All metric ids are
/// interned at construction, so the callbacks are allocation-free.
///
/// Registered metrics:
///  - counter   `sim.events_scheduled`
///  - counter   `sim.events_dispatched`
///  - counter   `sim.events_cancelled`
///  - histogram `sim.dispatch_delay_us` — sim-time lag between an event's
///    enqueue and its dispatch (the scheduling horizon of the workload)
///  - gauge     `sim.queue_depth.peak`
class SimObserver final : public sim::Simulator::Observer {
 public:
  /// \p registry must outlive the observer's attachment.
  explicit SimObserver(MetricsRegistry& registry);

  /// Registers (or finds) the per-source counter `sim.dispatched.<name>` and
  /// returns its id as an EventTag for the schedule_* tag parameter; every
  /// dispatch carrying the tag increments the counter.
  [[nodiscard]] sim::EventTag source(std::string_view name);

  void on_scheduled(sim::EventId id, sim::Time at, sim::Time now,
                    std::size_t pending) noexcept override;
  void on_dispatched(sim::EventId id, sim::Time at, sim::Time enqueued_at,
                     std::size_t pending, sim::EventTag tag) noexcept override;
  void on_cancelled(sim::EventId id, std::size_t pending) noexcept override;

  [[nodiscard]] MetricsRegistry& registry() noexcept { return *registry_; }

 private:
  MetricsRegistry* registry_;
  MetricId scheduled_;
  MetricId dispatched_;
  MetricId cancelled_;
  MetricId delay_us_;
  MetricId depth_peak_;
};

}  // namespace ev::obs
