#include "ev/powertrain/regen.h"

#include <algorithm>

#include "ev/util/math.h"

namespace ev::powertrain {

BrakeSplit BrakeBlender::split(double brake_pedal, double speed_mps,
                               double charge_limit_w) const noexcept {
  BrakeSplit out;
  const double pedal = util::clamp(brake_pedal, 0.0, 1.0);
  const double total_force = pedal * config_.max_brake_force_n;
  if (!config_.enabled || speed_mps <= 0.0) {
    out.friction_force_n = total_force;
    return out;
  }
  // Regen capability: bounded by battery/inverter power at speed and by the
  // motor torque path at the wheel.
  const double power_cap = std::min(config_.max_regen_power_w, std::max(charge_limit_w, 0.0));
  double force_cap = speed_mps > 0.01
                         ? std::min(power_cap / speed_mps, config_.max_regen_force_n)
                         : 0.0;
  // Low-speed fade: field-oriented regeneration loses authority near zero.
  if (speed_mps < config_.fade_below_mps)
    force_cap *= speed_mps / config_.fade_below_mps;
  out.regen_force_n = std::min(total_force, force_cap);
  out.friction_force_n = total_force - out.regen_force_n;
  return out;
}

}  // namespace ev::powertrain
