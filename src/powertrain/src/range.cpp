#include "ev/powertrain/range.h"

#include <algorithm>

namespace ev::powertrain {

void RangeEstimator::update(double energy_wh, double distance_m) noexcept {
  pending_energy_wh_ += energy_wh;
  pending_distance_m_ += distance_m;
  if (pending_distance_m_ < 100.0) return;  // fold in 100 m granules
  const double km = pending_distance_m_ / 1000.0;
  const double observed = std::max(pending_energy_wh_ / km, 0.0);
  const double w = std::min(smoothing_ * km * 10.0, 1.0);  // weight scales with distance
  consumption_wh_km_ = (1.0 - w) * consumption_wh_km_ + w * observed;
  pending_energy_wh_ = 0.0;
  pending_distance_m_ = 0.0;
}

double RangeEstimator::remaining_range_km(double usable_energy_wh) const noexcept {
  if (consumption_wh_km_ <= 1.0) return 0.0;
  return std::max(usable_energy_wh, 0.0) / consumption_wh_km_;
}

bool RangeEstimator::reachable(double destination_km, double usable_energy_wh,
                               double reserve_fraction) const noexcept {
  return destination_km <= remaining_range_km(usable_energy_wh) * (1.0 - reserve_fraction);
}

}  // namespace ev::powertrain
