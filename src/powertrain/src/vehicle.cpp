#include "ev/powertrain/vehicle.h"

#include <algorithm>
#include <cmath>

namespace ev::powertrain {

double VehicleDynamics::road_load_n(double grade_rad) const noexcept {
  const double drag =
      0.5 * params_.air_density_kg_m3 * params_.drag_area_m2 * speed_ * speed_;
  const double rolling = speed_ > 0.0 ? params_.rolling_resistance * params_.mass_kg *
                                            params_.gravity_m_s2 * std::cos(grade_rad)
                                      : 0.0;
  const double grade = params_.mass_kg * params_.gravity_m_s2 * std::sin(grade_rad);
  return drag + rolling + grade;
}

double VehicleDynamics::step(double traction_force_n, double dt_s, double grade_rad) noexcept {
  const double net = traction_force_n - road_load_n(grade_rad);
  double accel = net / params_.mass_kg;
  double new_speed = speed_ + accel * dt_s;
  if (new_speed < 0.0) {
    // Braking cannot push the vehicle backwards; stop exactly at zero.
    accel = -speed_ / dt_s;
    new_speed = 0.0;
  }
  distance_ += (speed_ + new_speed) * 0.5 * dt_s;
  speed_ = new_speed;
  return accel;
}

double VehicleDynamics::motor_speed_rad_s() const noexcept {
  return speed_ / params_.wheel_radius_m * params_.gear_ratio;
}

double VehicleDynamics::wheel_force_n(double torque_nm) const noexcept {
  return torque_nm * params_.gear_ratio * params_.driveline_efficiency /
         params_.wheel_radius_m;
}

double VehicleDynamics::motor_torque_nm(double force_n) const noexcept {
  return force_n * params_.wheel_radius_m /
         (params_.gear_ratio * params_.driveline_efficiency);
}

}  // namespace ev::powertrain
