#include "ev/powertrain/drive_cycle.h"

#include <algorithm>
#include <stdexcept>

#include "ev/util/units.h"

namespace ev::powertrain {

DriveCycle::DriveCycle(std::string name, std::vector<CyclePoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (points_.size() < 2) throw std::invalid_argument("DriveCycle: need at least two points");
  if (points_.front().t_s != 0.0)
    throw std::invalid_argument("DriveCycle: profile must start at t = 0");
  for (std::size_t i = 1; i < points_.size(); ++i)
    if (points_[i].t_s <= points_[i - 1].t_s)
      throw std::invalid_argument("DriveCycle: times must be strictly increasing");
  for (const auto& p : points_)
    if (p.speed_mps < 0.0) throw std::invalid_argument("DriveCycle: speeds must be >= 0");
}

double DriveCycle::speed_at(double t_s) const noexcept {
  if (t_s <= 0.0) return points_.front().speed_mps;
  if (t_s >= points_.back().t_s) return points_.back().speed_mps;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t_s,
      [](const CyclePoint& p, double t) { return p.t_s < t; });
  const CyclePoint& hi = *it;
  const CyclePoint& lo = *(it - 1);
  const double frac = (t_s - lo.t_s) / (hi.t_s - lo.t_s);
  return lo.speed_mps + (hi.speed_mps - lo.speed_mps) * frac;
}

double DriveCycle::ideal_distance_m() const noexcept {
  double d = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i)
    d += 0.5 * (points_[i].speed_mps + points_[i - 1].speed_mps) *
         (points_[i].t_s - points_[i - 1].t_s);
  return d;
}

double DriveCycle::mean_speed_mps() const noexcept {
  return ideal_distance_m() / duration_s();
}

int DriveCycle::stop_count() const noexcept {
  int stops = 0;
  bool moving = false;
  for (const auto& p : points_) {
    if (p.speed_mps > 0.1) {
      moving = true;
    } else if (moving) {
      ++stops;
      moving = false;
    }
  }
  return stops;
}

CycleBuilder& CycleBuilder::cruise(double seconds) {
  const CyclePoint last = points_.back();
  points_.push_back(CyclePoint{last.t_s + seconds, last.speed_mps});
  return *this;
}

CycleBuilder& CycleBuilder::ramp_to(double target_kmh, double seconds) {
  const CyclePoint last = points_.back();
  points_.push_back(CyclePoint{last.t_s + seconds, util::kmh_to_mps(target_kmh)});
  return *this;
}

CycleBuilder& CycleBuilder::stop(double seconds, double idle_seconds) {
  const CyclePoint last = points_.back();
  points_.push_back(CyclePoint{last.t_s + seconds, 0.0});
  points_.push_back(CyclePoint{last.t_s + seconds + idle_seconds, 0.0});
  return *this;
}

DriveCycle CycleBuilder::build() && { return DriveCycle(std::move(name_), std::move(points_)); }

DriveCycle DriveCycle::urban() {
  CycleBuilder b("urban");
  // Twelve stop-go micro-trips with varied peaks, UDDS-like character.
  const double peaks_kmh[] = {30, 45, 25, 50, 40, 35, 55, 30, 45, 40, 25, 50};
  for (double peak : peaks_kmh) {
    b.ramp_to(peak, peak / 2.2);   // ~0.6-0.7 m/s^2 acceleration
    b.cruise(25.0);
    b.stop(peak / 2.8, 8.0);       // ~0.8-1.0 m/s^2 braking, 8 s dwell
  }
  return std::move(b).build();
}

DriveCycle DriveCycle::highway() {
  CycleBuilder b("highway");
  b.ramp_to(100.0, 30.0).cruise(300.0).ramp_to(120.0, 15.0).cruise(300.0).ramp_to(100.0, 10.0)
      .cruise(200.0).stop(25.0, 5.0);
  return std::move(b).build();
}

DriveCycle DriveCycle::suburban() {
  CycleBuilder b("suburban");
  const double peaks_kmh[] = {60, 70, 50, 80};
  for (double peak : peaks_kmh) {
    b.ramp_to(peak, peak / 2.0);
    b.cruise(90.0);
    b.stop(peak / 2.5, 10.0);
  }
  return std::move(b).build();
}

DriveCycle DriveCycle::repeat(const DriveCycle& base, int times) {
  if (times < 1) throw std::invalid_argument("DriveCycle::repeat: times must be >= 1");
  std::vector<CyclePoint> pts;
  double offset = 0.0;
  for (int k = 0; k < times; ++k) {
    for (const auto& p : base.points()) {
      if (k > 0 && p.t_s == 0.0) continue;  // skip duplicate joint knot
      pts.push_back(CyclePoint{p.t_s + offset, p.speed_mps});
    }
    offset += base.duration_s();
  }
  return DriveCycle(base.name() + "x" + std::to_string(times), std::move(pts));
}

}  // namespace ev::powertrain
