#include "ev/powertrain/motor_map.h"

#include <algorithm>
#include <cmath>

namespace ev::powertrain {

double MotorMap::clamp_torque(double torque_nm, double speed_rad_s) const noexcept {
  double t = std::clamp(torque_nm, -config_.max_torque_nm, config_.max_torque_nm);
  const double w = std::fabs(speed_rad_s);
  if (w > 1.0) {
    const double power_torque_cap = config_.max_power_w / w;
    t = std::clamp(t, -power_torque_cap, power_torque_cap);
  }
  return t;
}

double MotorMap::loss_w(double torque_nm, double speed_rad_s) const noexcept {
  const auto& m = config_.machine;
  // Copper: torque maps to q-current through the torque constant.
  const double kt = 1.5 * m.pole_pairs * m.flux_linkage_wb;
  const double iq = torque_nm / kt;
  const double copper = 1.5 * m.stator_resistance_ohm * iq * iq;
  // Iron: grows with electrical frequency squared.
  const double omega_e = speed_rad_s * m.pole_pairs;
  const double iron = config_.iron_loss_w_per_rad2 * omega_e * omega_e;
  // Inverter: fixed + conduction proportional to mechanical throughput.
  const double mech = std::fabs(torque_nm * speed_rad_s);
  const double inverter = config_.inverter_fixed_loss_w + config_.inverter_loss_fraction * mech;
  return copper + iron + inverter;
}

double MotorMap::electrical_power_w(double torque_nm, double speed_rad_s) const noexcept {
  const double mech = torque_nm * speed_rad_s;
  return mech + loss_w(torque_nm, speed_rad_s);
}

double MotorMap::efficiency(double torque_nm, double speed_rad_s) const noexcept {
  const double mech = std::fabs(torque_nm * speed_rad_s);
  if (mech <= 0.0) return 0.0;
  const double loss = loss_w(torque_nm, speed_rad_s);
  return mech / (mech + loss);
}

}  // namespace ev::powertrain
