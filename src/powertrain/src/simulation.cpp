#include "ev/powertrain/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ev/util/math.h"
#include "ev/util/units.h"

namespace ev::powertrain {

PowertrainSimulation::PowertrainSimulation(PowertrainConfig config)
    : config_(config),
      rng_(config.seed),
      vehicle_(config.vehicle),
      motor_(config.motor),
      blender_(config.regen),
      aux_dcdc_(config.aux_dcdc) {
  pack_ = std::make_unique<battery::Pack>(config_.pack, rng_);
  config_.bms.initial_soc_estimate = config_.pack.initial_soc;
  bms_ = std::make_unique<bms::BatteryManager>(*pack_, config_.bms);
}

void PowertrainSimulation::set_drive_limits(double torque_fraction, double speed_limit_mps) {
  torque_limit_fraction_ = std::clamp(torque_fraction, 0.0, 1.0);
  speed_limit_mps_ = std::max(speed_limit_mps, 0.0);
}

void PowertrainSimulation::clear_drive_limits() noexcept {
  torque_limit_fraction_ = 1.0;
  speed_limit_mps_ = std::numeric_limits<double>::infinity();
}

PowertrainSnapshot PowertrainSimulation::step(double target_speed_mps) {
  const double dt = config_.dt_s;
  target_speed_mps = std::min(target_speed_mps, speed_limit_mps_);
  const bms::BmsReport& report = bms_->report();

  // --- Driver -> pedals ----------------------------------------------------
  const PedalState pedals = driver_.update(target_speed_mps, vehicle_.speed_mps(), dt);

  // --- Pedal -> wheel force demand ------------------------------------------
  const double motor_speed = vehicle_.motor_speed_rad_s();
  double drive_torque = 0.0;
  double friction_force = 0.0;
  double regen_torque = 0.0;

  if (pedals.accelerator > 0.0) {
    double torque_demand = pedals.accelerator * torque_limit_fraction_ *
                           motor_.clamp_torque(motor_.config().max_torque_nm, motor_speed);
    // Battery discharge power limit (from the BMS) caps the torque.
    const double limit_w = report.discharge_power_limit_w > 0.0
                               ? report.discharge_power_limit_w
                               : pack_->open_circuit_voltage() * 400.0;  // first step default
    if (motor_speed > 1.0) {
      const double max_torque_by_power = limit_w / motor_speed;
      torque_demand = std::min(torque_demand, max_torque_by_power);
    }
    drive_torque = motor_.clamp_torque(torque_demand, motor_speed);
  } else if (pedals.brake > 0.0) {
    const BrakeSplit split =
        blender_.split(pedals.brake, vehicle_.speed_mps(), report.charge_power_limit_w);
    friction_force = split.friction_force_n;
    regen_torque = -motor_.clamp_torque(vehicle_.motor_torque_nm(split.regen_force_n),
                                        motor_speed);
  }

  const double motor_torque = drive_torque + regen_torque;  // regen_torque <= 0

  // --- Electrical power balance ---------------------------------------------
  const double traction_power_w = motor_.electrical_power_w(motor_torque, motor_speed);
  const double aux_input_w = aux_dcdc_.transfer(config_.aux_power_w, dt);
  const double battery_power_w = traction_power_w + aux_input_w;

  const double pack_v = std::max(pack_->terminal_voltage(0.0), 1.0);
  const double battery_current_a = battery_power_w / pack_v;
  pack_->step(battery_current_a, dt, config_.ambient_c);
  (void)bms_->step(*pack_, dt, rng_);

  // --- Vehicle motion ---------------------------------------------------------
  const double wheel_force = vehicle_.wheel_force_n(motor_torque) - friction_force;
  const double speed_before = vehicle_.speed_mps();
  vehicle_.step(wheel_force, dt);

  // --- Accounting --------------------------------------------------------------
  const double battery_energy_wh = util::j_to_wh(battery_power_w * dt);
  if (battery_power_w >= 0.0) {
    ledger_.battery_energy_out_wh += battery_energy_wh;
  } else {
    ledger_.battery_energy_in_wh += -battery_energy_wh;
    ledger_.regen_recovered_wh += -battery_energy_wh;
  }
  ledger_.friction_brake_loss_wh += util::j_to_wh(friction_force * speed_before * dt);
  ledger_.motor_loss_wh += util::j_to_wh(motor_.loss_w(motor_torque, motor_speed) * dt);
  ledger_.aux_energy_wh += util::j_to_wh(aux_input_w * dt);
  speed_error_accum_ += std::fabs(target_speed_mps - vehicle_.speed_mps());
  ++steps_;
  time_s_ += dt;

  range_.update(battery_energy_wh, vehicle_.speed_mps() * dt);

  PowertrainSnapshot snap;
  snap.time_s = time_s_;
  snap.speed_mps = vehicle_.speed_mps();
  snap.target_mps = target_speed_mps;
  snap.motor_torque_nm = motor_torque;
  snap.battery_power_w = battery_power_w;
  snap.pack_voltage_v = pack_v;
  snap.pack_soc = bms_->report().pack_soc;
  snap.remaining_range_km = range_.remaining_range_km(pack_->usable_energy_wh());
  return snap;
}

CycleResult PowertrainSimulation::run_cycle(const DriveCycle& cycle) {
  const CycleResult before = ledger_;
  const double dist_before = vehicle_.distance_m();
  const double t_start = time_s_;
  driver_.reset();

  while (time_s_ - t_start < cycle.duration_s()) {
    (void)step(cycle.speed_at(time_s_ - t_start));
    if (bms_->safety().tripped()) {
      ledger_.safety_tripped = true;
      break;
    }
    if (pack_->min_soc() <= 0.01) {
      ledger_.battery_depleted = true;
      break;
    }
  }

  CycleResult result = ledger_;
  result.battery_energy_out_wh -= before.battery_energy_out_wh;
  result.battery_energy_in_wh -= before.battery_energy_in_wh;
  result.regen_recovered_wh -= before.regen_recovered_wh;
  result.friction_brake_loss_wh -= before.friction_brake_loss_wh;
  result.motor_loss_wh -= before.motor_loss_wh;
  result.aux_energy_wh -= before.aux_energy_wh;
  result.distance_km = (vehicle_.distance_m() - dist_before) / 1000.0;
  result.duration_s = time_s_ - t_start;
  result.final_soc = pack_->mean_soc();
  result.mean_abs_speed_error_mps =
      steps_ > 0 ? speed_error_accum_ / static_cast<double>(steps_) : 0.0;
  const double net_wh = result.battery_energy_out_wh - result.battery_energy_in_wh;
  result.consumption_wh_km = result.distance_km > 0.01 ? net_wh / result.distance_km : 0.0;
  return result;
}

double PowertrainSimulation::measure_range_km(const DriveCycle& cycle, double soc_floor) {
  // Safety bound: stop after enough repetitions to drain any realistic pack.
  for (int rep = 0; rep < 400; ++rep) {
    const CycleResult r = run_cycle(cycle);
    if (r.safety_tripped || r.battery_depleted) break;
    if (pack_->min_soc() <= soc_floor) break;
  }
  return vehicle_.distance_m() / 1000.0;
}

}  // namespace ev::powertrain
