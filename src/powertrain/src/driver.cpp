#include "ev/powertrain/driver.h"

#include "ev/util/math.h"

namespace ev::powertrain {

PedalState DriverModel::update(double target_mps, double actual_mps, double dt_s) noexcept {
  const double error = target_mps - actual_mps;
  integral_ += ki_ * error * dt_s;
  integral_ = util::clamp(integral_, -1.0, 1.0);
  const double demand = kp_ * error + integral_;  // >0 accelerate, <0 brake
  PedalState pedals;
  if (demand >= 0.0) {
    pedals.accelerator = util::clamp(demand, 0.0, 1.0);
  } else {
    pedals.brake = util::clamp(-demand, 0.0, 1.0);
    // Anti-windup: do not hold accelerator integral while braking.
    integral_ = util::clamp(integral_, -1.0, 0.2);
  }
  // Full stop handling: release everything when stopped at a stopped target.
  if (target_mps < 0.05 && actual_mps < 0.05) {
    pedals.accelerator = 0.0;
    pedals.brake = 1.0;
    integral_ = 0.0;
  }
  return pedals;
}

}  // namespace ev::powertrain
