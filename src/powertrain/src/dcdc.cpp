#include "ev/powertrain/dcdc.h"

#include <algorithm>

namespace ev::powertrain {

double DcDcConverter::loss_w(double output_w) const noexcept {
  const double p = std::clamp(output_w, 0.0, params_.rated_power_w);
  return params_.fixed_loss_w + params_.proportional_loss * p +
         params_.quadratic_loss * p * p / params_.rated_power_w;
}

double DcDcConverter::efficiency(double output_w) const noexcept {
  const double p = std::clamp(output_w, 0.0, params_.rated_power_w);
  if (p <= 0.0) return 0.0;
  return p / (p + loss_w(p));
}

double DcDcConverter::transfer(double output_w, double dt_s) noexcept {
  const double p = std::clamp(output_w, 0.0, params_.rated_power_w);
  const double loss = loss_w(p);
  delivered_j_ += p * dt_s;
  losses_j_ += loss * dt_s;
  return p + loss;
}

}  // namespace ev::powertrain
