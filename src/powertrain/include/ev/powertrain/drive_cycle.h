/// \file drive_cycle.h
/// Drive cycles: target-speed-vs-time profiles the driver model follows.
/// Since certified dynamometer traces (UDDS/NEDC/WLTP) are licensed data,
/// the library synthesizes cycles with the same structure from primitives
/// (idle, accelerate, cruise, brake); the urban/highway presets match the
/// statistical character (stop density, mean speed) of their namesakes.
#pragma once

#include <string>
#include <vector>

namespace ev::powertrain {

/// One knot of a speed profile.
struct CyclePoint {
  double t_s = 0.0;      ///< Time since cycle start [s].
  double speed_mps = 0.0;  ///< Target speed [m/s].
};

/// Piecewise-linear target-speed profile.
class DriveCycle {
 public:
  /// Builds a cycle from knots with strictly increasing times starting at 0.
  DriveCycle(std::string name, std::vector<CyclePoint> points);

  /// Target speed at \p t_s (clamped to the profile ends) [m/s].
  [[nodiscard]] double speed_at(double t_s) const noexcept;
  /// Total cycle duration [s].
  [[nodiscard]] double duration_s() const noexcept { return points_.back().t_s; }
  /// Distance covered when tracking the profile exactly [m].
  [[nodiscard]] double ideal_distance_m() const noexcept;
  /// Mean target speed over the cycle [m/s].
  [[nodiscard]] double mean_speed_mps() const noexcept;
  /// Number of full stops (speed returns to zero) in the profile.
  [[nodiscard]] int stop_count() const noexcept;
  /// Cycle name.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Profile knots.
  [[nodiscard]] const std::vector<CyclePoint>& points() const noexcept { return points_; }

  /// Urban stop-and-go cycle (~UDDS character: ~12 stops, mean ~30 km/h).
  [[nodiscard]] static DriveCycle urban();
  /// Highway cruise cycle (~100-120 km/h, no stops).
  [[nodiscard]] static DriveCycle highway();
  /// Mixed suburban cycle (a few stops, mean ~55 km/h).
  [[nodiscard]] static DriveCycle suburban();

  /// Repeats \p base \p times back-to-back (for range tests that need more
  /// distance than one cycle provides).
  [[nodiscard]] static DriveCycle repeat(const DriveCycle& base, int times);

 private:
  std::string name_;
  std::vector<CyclePoint> points_;
};

/// Incremental builder assembling a cycle from driving primitives.
class CycleBuilder {
 public:
  /// Starts a cycle named \p name at speed zero, time zero.
  explicit CycleBuilder(std::string name) : name_(std::move(name)) {
    points_.push_back(CyclePoint{0.0, 0.0});
  }

  /// Holds the current speed for \p seconds.
  CycleBuilder& cruise(double seconds);
  /// Ramps linearly to \p target_kmh over \p seconds.
  CycleBuilder& ramp_to(double target_kmh, double seconds);
  /// Brakes linearly to zero over \p seconds and idles \p idle_seconds.
  CycleBuilder& stop(double seconds, double idle_seconds = 5.0);

  /// Finalizes the cycle.
  [[nodiscard]] DriveCycle build() &&;

 private:
  std::string name_;
  std::vector<CyclePoint> points_;
};

}  // namespace ev::powertrain
