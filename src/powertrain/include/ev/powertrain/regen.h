/// \file regen.h
/// Brake-by-wire blending: splits a brake-pedal demand into regenerative
/// motor torque and friction-brake torque. The paper argues that mechanical
/// decoupling of the brake pedal is what makes energy recuperation — and
/// therefore acceptable EV range — possible; experiment E4 measures the
/// range this controller recovers.
#pragma once

namespace ev::powertrain {

/// Blending policy parameters.
struct RegenConfig {
  bool enabled = true;              ///< False = pure friction braking (baseline).
  double max_regen_power_w = 60e3;  ///< Motor/inverter regeneration capability.
  double max_regen_force_n = 8e3;   ///< Wheel-force limit of the motor torque path.
  double fade_below_mps = 2.5;      ///< Regen fades out linearly below this speed.
  double max_brake_force_n = 12e3;  ///< Total wheel braking force at pedal = 1.
};

/// Result of one blending decision.
struct BrakeSplit {
  double regen_force_n = 0.0;     ///< Wheel force served regeneratively (>= 0).
  double friction_force_n = 0.0;  ///< Wheel force served by friction brakes (>= 0).
};

/// Stateless brake blender. Regeneration takes as much of the demand as the
/// battery charge-power limit and the fade band allow; friction covers the
/// remainder so total deceleration always matches the pedal.
class BrakeBlender {
 public:
  explicit BrakeBlender(RegenConfig config = {}) noexcept : config_(config) {}

  /// Splits pedal demand \p brake_pedal (0..1) at vehicle speed \p speed_mps
  /// under the BMS charge-power limit \p charge_limit_w.
  [[nodiscard]] BrakeSplit split(double brake_pedal, double speed_mps,
                                 double charge_limit_w) const noexcept;

  /// Active configuration.
  [[nodiscard]] const RegenConfig& config() const noexcept { return config_; }

 private:
  RegenConfig config_;
};

}  // namespace ev::powertrain
