/// \file motor_map.h
/// Quasi-static motor+inverter model for long-horizon energy simulation.
/// The switched MotorDrive (ev::motor) resolves microseconds and is the
/// right tool for waveform/fault studies (E3), but a 1500 s drive cycle
/// needs a power-level abstraction: torque is assumed tracked within the
/// current limit, and losses follow the physical decomposition (copper,
/// iron, inverter switching/conduction) derived from the same PMSM
/// parameters.
#pragma once

#include "ev/motor/pmsm.h"

namespace ev::powertrain {

/// Loss coefficients beyond the PMSM electrical parameters.
struct MotorMapConfig {
  ev::motor::PmsmParameters machine;
  double iron_loss_w_per_rad2 = 0.002;   ///< k_fe * omega_e^2 iron losses.
  double inverter_fixed_loss_w = 120.0;  ///< Gate drive + switching base.
  double inverter_loss_fraction = 0.015; ///< Conduction loss vs throughput.
  double max_torque_nm = 250.0;          ///< Peak machine torque.
  double max_power_w = 80e3;             ///< Peak mechanical power.
};

/// Quasi-static torque/power/loss map.
class MotorMap {
 public:
  explicit MotorMap(MotorMapConfig config = {}) noexcept : config_(config) {}

  /// Clamps \p torque_nm to the torque and power envelope at \p speed_rad_s.
  [[nodiscard]] double clamp_torque(double torque_nm, double speed_rad_s) const noexcept;

  /// Electrical power drawn from (positive) or fed into (negative) the dc
  /// link to produce \p torque_nm at \p speed_rad_s, including machine and
  /// inverter losses. Regeneration returns less than the mechanical power by
  /// the same loss mechanisms.
  [[nodiscard]] double electrical_power_w(double torque_nm, double speed_rad_s) const noexcept;

  /// Loss power at the operating point [W].
  [[nodiscard]] double loss_w(double torque_nm, double speed_rad_s) const noexcept;

  /// Efficiency at the operating point in (0,1]; motoring convention.
  [[nodiscard]] double efficiency(double torque_nm, double speed_rad_s) const noexcept;

  /// Configuration.
  [[nodiscard]] const MotorMapConfig& config() const noexcept { return config_; }

 private:
  MotorMapConfig config_;
};

}  // namespace ev::powertrain
