/// \file vehicle.h
/// Longitudinal vehicle dynamics: the road-load plant the electric
/// powertrain (Fig. 4) pushes against. Forces: inertia, aerodynamic drag,
/// rolling resistance, grade.
#pragma once

namespace ev::powertrain {

/// Road-load and drivetrain parameters. Defaults approximate a compact EV
/// (~1.6 t, Cd*A ~0.65 m^2).
struct VehicleParameters {
  double mass_kg = 1600.0;             ///< Curb + payload mass.
  double drag_area_m2 = 0.65;          ///< Cd * frontal area.
  double air_density_kg_m3 = 1.2;      ///< rho.
  double rolling_resistance = 0.010;   ///< Crr.
  double wheel_radius_m = 0.31;        ///< Dynamic wheel radius.
  double gear_ratio = 9.0;             ///< Single-speed reduction, motor:wheel.
  double driveline_efficiency = 0.97;  ///< Gear mesh + bearing losses.
  double gravity_m_s2 = 9.81;
};

/// Integrates vehicle speed and distance under applied wheel force.
class VehicleDynamics {
 public:
  explicit VehicleDynamics(VehicleParameters params = {}) noexcept : params_(params) {}

  /// Advances by \p dt_s under net tractive force \p traction_force_n at the
  /// wheels (negative = braking) on a grade of \p grade_rad. Speed is
  /// clamped at zero (no reverse in this model); returns the actual
  /// acceleration applied [m/s^2].
  double step(double traction_force_n, double dt_s, double grade_rad = 0.0) noexcept;

  /// Resistive road load at the current speed (positive opposes motion) [N].
  [[nodiscard]] double road_load_n(double grade_rad = 0.0) const noexcept;

  /// Vehicle speed [m/s].
  [[nodiscard]] double speed_mps() const noexcept { return speed_; }
  /// Distance travelled [m].
  [[nodiscard]] double distance_m() const noexcept { return distance_; }
  /// Motor shaft speed for the current vehicle speed [rad/s].
  [[nodiscard]] double motor_speed_rad_s() const noexcept;
  /// Wheel force produced by motor torque \p torque_nm through the gear [N].
  [[nodiscard]] double wheel_force_n(double torque_nm) const noexcept;
  /// Motor torque needed for wheel force \p force_n (inverse gear path) [Nm].
  [[nodiscard]] double motor_torque_nm(double force_n) const noexcept;
  /// Parameters.
  [[nodiscard]] const VehicleParameters& params() const noexcept { return params_; }
  /// Forces vehicle speed (test helper).
  void set_speed(double mps) noexcept { speed_ = mps < 0.0 ? 0.0 : mps; }

 private:
  VehicleParameters params_;
  double speed_ = 0.0;
  double distance_ = 0.0;
};

}  // namespace ev::powertrain
