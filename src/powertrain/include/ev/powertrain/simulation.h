/// \file simulation.h
/// Whole-powertrain energy simulation (the executable version of Fig. 4):
/// battery pack + BMS + quasi-static motor/inverter + DC-DC auxiliary rail +
/// brake-by-wire blending + vehicle dynamics + driver, stepped on a common
/// fixed period. This is the plant the energy-flow control claims of the
/// paper are measured against (experiments E2 and E4).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>

#include "ev/battery/pack.h"
#include "ev/bms/battery_manager.h"
#include "ev/powertrain/dcdc.h"
#include "ev/powertrain/drive_cycle.h"
#include "ev/powertrain/driver.h"
#include "ev/powertrain/motor_map.h"
#include "ev/powertrain/range.h"
#include "ev/powertrain/regen.h"
#include "ev/powertrain/vehicle.h"
#include "ev/util/rng.h"

namespace ev::powertrain {

/// Full-vehicle configuration.
struct PowertrainConfig {
  VehicleParameters vehicle;
  MotorMapConfig motor;
  RegenConfig regen;
  battery::PackConfig pack;
  bms::BmsConfig bms;
  DcDcParameters aux_dcdc;      ///< HV -> 12 V converter.
  double aux_power_w = 450.0;   ///< Constant 12 V auxiliary load.
  double dt_s = 0.1;            ///< Simulation period.
  double ambient_c = 25.0;      ///< Ambient temperature.
  std::uint64_t seed = 1;       ///< Reproducibility seed.
};

/// Energy ledger and outcome of a simulation run.
struct CycleResult {
  double distance_km = 0.0;
  double duration_s = 0.0;
  double battery_energy_out_wh = 0.0;   ///< Gross energy drawn (discharge).
  double battery_energy_in_wh = 0.0;    ///< Energy returned by regeneration.
  double regen_recovered_wh = 0.0;      ///< Same as energy_in minus charging losses.
  double friction_brake_loss_wh = 0.0;  ///< Energy burnt in friction brakes.
  double motor_loss_wh = 0.0;           ///< Machine + inverter losses.
  double aux_energy_wh = 0.0;           ///< 12 V rail consumption incl. DC-DC losses.
  double consumption_wh_km = 0.0;       ///< Net consumption over the run.
  double mean_abs_speed_error_mps = 0.0;  ///< Cycle-tracking quality.
  double final_soc = 0.0;               ///< Mean true SoC at the end.
  bool battery_depleted = false;        ///< Run ended on an empty/derated pack.
  bool safety_tripped = false;          ///< BMS opened the contactor.
};

/// Instantaneous operating point published each step (information-system &
/// co-simulation tap).
struct PowertrainSnapshot {
  double time_s = 0.0;
  double speed_mps = 0.0;
  double target_mps = 0.0;
  double motor_torque_nm = 0.0;
  double battery_power_w = 0.0;  ///< Positive = discharging.
  double pack_voltage_v = 0.0;
  double pack_soc = 0.0;         ///< BMS-estimated.
  double remaining_range_km = 0.0;
};

/// The integrated powertrain plant.
class PowertrainSimulation {
 public:
  explicit PowertrainSimulation(PowertrainConfig config = {});

  /// Advances one period toward \p target_speed_mps; returns the snapshot.
  PowertrainSnapshot step(double target_speed_mps);

  /// Constrains the plant per a degradation mode: motor torque is clamped to
  /// \p torque_fraction of the map's maximum and the driver's target speed
  /// is capped at \p speed_limit_mps. Both apply until changed or cleared;
  /// the DegradationManager's outputs plug in here.
  void set_drive_limits(double torque_fraction, double speed_limit_mps);
  /// Removes any degradation limits (service reset).
  void clear_drive_limits() noexcept;
  /// Torque limit currently in force (1.0 when unconstrained).
  [[nodiscard]] double torque_limit_fraction() const noexcept {
    return torque_limit_fraction_;
  }
  /// Speed limit currently in force [m/s] (infinity when unconstrained).
  [[nodiscard]] double speed_limit_mps() const noexcept { return speed_limit_mps_; }

  /// Runs \p cycle to completion (or battery depletion); returns the ledger.
  CycleResult run_cycle(const DriveCycle& cycle);

  /// Drives repetitions of \p cycle until the pack empties or the BMS trips;
  /// returns the achieved driving range [km]. \p soc_floor ends the run when
  /// the weakest cell reaches it.
  double measure_range_km(const DriveCycle& cycle, double soc_floor = 0.03);

  /// Access to the battery pack (inspection).
  [[nodiscard]] const battery::Pack& pack() const noexcept { return *pack_; }
  /// Access to the BMS.
  [[nodiscard]] const bms::BatteryManager& bms() const noexcept { return *bms_; }
  /// Mutable BMS access for fault injection (sensor stuck-at/drift/dropout
  /// reach the module managers through here).
  [[nodiscard]] bms::BatteryManager& bms() noexcept { return *bms_; }
  /// Access to the vehicle state.
  [[nodiscard]] const VehicleDynamics& vehicle() const noexcept { return vehicle_; }
  /// Access to the range estimator (information-system feed).
  [[nodiscard]] const RangeEstimator& range_estimator() const noexcept { return range_; }
  /// Elapsed time [s].
  [[nodiscard]] double time_s() const noexcept { return time_s_; }
  /// Running energy ledger for the whole lifetime of the simulation.
  [[nodiscard]] const CycleResult& ledger() const noexcept { return ledger_; }
  /// Configuration.
  [[nodiscard]] const PowertrainConfig& config() const noexcept { return config_; }

 private:
  PowertrainConfig config_;
  util::Rng rng_;
  std::unique_ptr<battery::Pack> pack_;
  std::unique_ptr<bms::BatteryManager> bms_;
  VehicleDynamics vehicle_;
  MotorMap motor_;
  BrakeBlender blender_;
  DriverModel driver_;
  DcDcConverter aux_dcdc_;
  RangeEstimator range_;
  double time_s_ = 0.0;
  double torque_limit_fraction_ = 1.0;
  double speed_limit_mps_ = std::numeric_limits<double>::infinity();
  CycleResult ledger_;
  double speed_error_accum_ = 0.0;
  std::size_t steps_ = 0;
};

}  // namespace ev::powertrain
