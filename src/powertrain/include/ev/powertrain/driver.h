/// \file driver.h
/// Driver model: a PI speed tracker translating the drive-cycle target into
/// accelerator and brake pedal positions — the "desired driver inputs" that
/// the drive-by-wire layer then enhances (regeneration blending, prudent
/// acceleration shaping).
#pragma once

namespace ev::powertrain {

/// Pedal outputs, each in [0, 1]; at most one is nonzero per step.
struct PedalState {
  double accelerator = 0.0;
  double brake = 0.0;
};

/// PI speed-tracking driver.
class DriverModel {
 public:
  /// \p kp and \p ki act on the speed error in m/s.
  explicit DriverModel(double kp = 0.35, double ki = 0.08) noexcept : kp_(kp), ki_(ki) {}

  /// Produces pedal positions to move \p actual_mps toward \p target_mps.
  [[nodiscard]] PedalState update(double target_mps, double actual_mps, double dt_s) noexcept;

  /// Clears the integral state.
  void reset() noexcept { integral_ = 0.0; }

 private:
  double kp_;
  double ki_;
  double integral_ = 0.0;
};

}  // namespace ev::powertrain
