/// \file range.h
/// Range estimation for the EV information system. The paper requires an
/// information system "that ensures that driving ranges are never exceeded";
/// this estimator turns battery state and observed consumption into the
/// remaining-range and reachability answers that system publishes.
#pragma once

namespace ev::powertrain {

/// Exponentially weighted consumption tracker plus range projection.
class RangeEstimator {
 public:
  /// \p initial_consumption_wh_km seeds the estimate before any driving;
  /// \p smoothing in (0,1] is the EWMA weight per update-kilometre.
  explicit RangeEstimator(double initial_consumption_wh_km = 160.0,
                          double smoothing = 0.15) noexcept
      : consumption_wh_km_(initial_consumption_wh_km), smoothing_(smoothing) {}

  /// Folds in a driven segment of \p distance_m using \p energy_wh drawn
  /// from the battery (net of regeneration). Segments shorter than a few
  /// meters are accumulated until significant.
  void update(double energy_wh, double distance_m) noexcept;

  /// Current consumption estimate [Wh/km].
  [[nodiscard]] double consumption_wh_km() const noexcept { return consumption_wh_km_; }

  /// Projected remaining range given \p usable_energy_wh left in the pack [km].
  [[nodiscard]] double remaining_range_km(double usable_energy_wh) const noexcept;

  /// True when \p destination_km is within range including \p reserve_fraction
  /// safety margin (e.g. 0.15 keeps 15% headroom) — the "never exceed the
  /// driving range" predicate.
  [[nodiscard]] bool reachable(double destination_km, double usable_energy_wh,
                               double reserve_fraction = 0.15) const noexcept;

 private:
  double consumption_wh_km_;
  double smoothing_;
  double pending_energy_wh_ = 0.0;
  double pending_distance_m_ = 0.0;
};

}  // namespace ev::powertrain
