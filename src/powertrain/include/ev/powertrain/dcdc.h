/// \file dcdc.h
/// DC-DC converter models for the powertrain of Fig. 4: the high-voltage to
/// 12 V auxiliary converter and the generic conversion-stage model used by
/// the energy-flow optimization. Efficiency follows the standard
/// fixed + proportional + quadratic loss decomposition.
#pragma once

namespace ev::powertrain {

/// Loss model of one conversion stage: P_loss = p0 + k1*P + k2*P^2/P_rated.
struct DcDcParameters {
  double rated_power_w = 3000.0;  ///< Nameplate throughput.
  double fixed_loss_w = 15.0;     ///< Gate drive, control, magnetizing losses.
  double proportional_loss = 0.02;  ///< Conduction-dominated fraction.
  double quadratic_loss = 0.015;    ///< I^2R-dominated fraction at rated power.
};

/// Unidirectional converter stage. transfer() maps demanded output power to
/// the input power drawn (output + losses); efficiency() reports the ratio.
class DcDcConverter {
 public:
  explicit DcDcConverter(DcDcParameters params = {}) noexcept : params_(params) {}

  /// Input power required to deliver \p output_w (clamped at rated power).
  /// Returns the drawn input power [W] and accumulates energy accounting.
  double transfer(double output_w, double dt_s) noexcept;

  /// Efficiency at \p output_w without advancing state.
  [[nodiscard]] double efficiency(double output_w) const noexcept;
  /// Loss power at \p output_w [W].
  [[nodiscard]] double loss_w(double output_w) const noexcept;

  /// Cumulative delivered output energy [J].
  [[nodiscard]] double delivered_j() const noexcept { return delivered_j_; }
  /// Cumulative conversion losses [J].
  [[nodiscard]] double losses_j() const noexcept { return losses_j_; }
  /// Parameters.
  [[nodiscard]] const DcDcParameters& params() const noexcept { return params_; }

 private:
  DcDcParameters params_;
  double delivered_j_ = 0.0;
  double losses_j_ = 0.0;
};

}  // namespace ev::powertrain
