#include "ev/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ev::util {

void RunningStats::add(double x) noexcept {
  // min_/max_ start at +inf/-inf, so the first observation needs no branch.
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  // Weighted-mean form of Chan's parallel update: every subexpression is
  // symmetric in (a, b) up to IEEE-commutative ops, so merge(A, B) and
  // merge(B, A) land on bit-identical state.
  mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
  m2_ = (m2_ + other.m2_) + delta * delta * (na * nb / (na + nb));
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::range() const noexcept { return n_ == 0 ? 0.0 : max_ - min_; }

void SampleSeries::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSeries::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSeries::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSeries::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSeries::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSeries::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be positive");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (std::isnan(x)) {
    ++nan_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  // Clamp in the double domain: converting a value outside the target
  // integer's range (e.g. ±1e308, ±inf) to an integer is undefined behavior.
  const double pos = std::clamp((x - lo_) / width, 0.0,
                                static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(pos)];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size())
    throw std::invalid_argument("Histogram::merge: incompatible ranges or bin counts");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  nan_ += other.nan_;
}

double Histogram::bin_center(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

}  // namespace ev::util
