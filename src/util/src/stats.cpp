#include "ev/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ev::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::range() const noexcept { return n_ == 0 ? 0.0 : max_ - min_; }

void SampleSeries::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSeries::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSeries::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSeries::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSeries::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSeries::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be positive");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

}  // namespace ev::util
