#include "ev/util/crc.h"

#include <array>

namespace ev::util {

std::uint16_t crc15_can(std::span<const std::uint8_t> data) noexcept {
  // Bit-serial implementation of the CAN 2.0 CRC (x^15 + x^14 + x^10 + x^8 +
  // x^7 + x^4 + x^3 + 1). CAN computes the CRC over the bit stream; byte
  // granularity is sufficient for the simulation model.
  std::uint16_t crc = 0;
  for (std::uint8_t byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      const bool in = ((byte >> bit) & 1u) != 0;
      const bool crc_msb = (crc & 0x4000u) != 0;
      crc = static_cast<std::uint16_t>((crc << 1) & 0x7fffu);
      if (in != crc_msb) crc ^= 0x4599u;
    }
  }
  return crc;
}

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrc32Table = make_crc32_table();

}  // namespace

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) crc = kCrc32Table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ev::util
