#include "ev/util/logging.h"

#include <atomic>
#include <iostream>

namespace ev::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::cout << "[" << level_name(level) << "] " << message << '\n';
}

void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace ev::util
