#include "ev/util/table.h"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace ev::util {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width does not match header width");
  rows_.push_back(std::move(cells));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (auto w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << (c ? "," : "") << quote(headers_[c]);
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) out << (c ? "," : "") << quote(row[c]);
    out << '\n';
  }
  return out.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_si(double value, int precision) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr Scale kScales[] = {{1e9, " G"}, {1e6, " M"}, {1e3, " k"}, {1.0, " "},
                                      {1e-3, " m"}, {1e-6, " u"}, {1e-9, " n"}};
  const double mag = std::fabs(value);
  if (mag == 0.0) return fmt(0.0, precision);
  for (const auto& s : kScales) {
    if (mag >= s.factor) return fmt(value / s.factor, precision) + s.suffix;
  }
  return fmt(value / 1e-9, precision) + " n";
}

std::string fmt_pct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

}  // namespace ev::util
