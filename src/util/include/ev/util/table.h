/// \file table.h
/// Console table rendering for the benchmark harness. Every experiment binary
/// prints its paper-shaped result rows through Table so output stays uniform
/// and machine-greppable; to_csv provides the same data for post-processing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ev::util {

/// A simple column-aligned text table with a title, a header row, and data
/// rows of formatted cells.
class Table {
 public:
  /// Creates a table titled \p title with the given column headers.
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  /// Number of columns.
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  /// Cell accessor (row-major).
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders the table with aligned columns, box rules, and the title.
  [[nodiscard]] std::string to_string() const;
  /// Renders the table as CSV (header row first, RFC-4180 quoting).
  [[nodiscard]] std::string to_csv() const;
  /// Writes to_string() to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p precision fractional digits (fixed notation).
[[nodiscard]] std::string fmt(double value, int precision = 3);
/// Formats a double as engineering-style value with SI suffix (k, M, G, m, u, n).
[[nodiscard]] std::string fmt_si(double value, int precision = 3);
/// Formats a ratio as a percentage string with \p precision digits.
[[nodiscard]] std::string fmt_pct(double ratio, int precision = 1);

}  // namespace ev::util
