/// \file units.h
/// Unit conversion helpers. evsys represents physical quantities as doubles
/// in SI base units (seconds, volts, amperes, watts, joules, kilograms,
/// meters, kelvin offsets in celsius); these helpers convert common
/// engineering units to and from the SI convention used across the code base.
#pragma once

namespace ev::util {

/// Converts kilometers per hour to meters per second.
[[nodiscard]] constexpr double kmh_to_mps(double kmh) noexcept { return kmh / 3.6; }
/// Converts meters per second to kilometers per hour.
[[nodiscard]] constexpr double mps_to_kmh(double mps) noexcept { return mps * 3.6; }

/// Converts revolutions per minute to mechanical radians per second.
[[nodiscard]] constexpr double rpm_to_rad_s(double rpm) noexcept {
  return rpm * 2.0 * 3.14159265358979323846 / 60.0;
}
/// Converts mechanical radians per second to revolutions per minute.
[[nodiscard]] constexpr double rad_s_to_rpm(double rad_s) noexcept {
  return rad_s * 60.0 / (2.0 * 3.14159265358979323846);
}

/// Converts watt-hours to joules.
[[nodiscard]] constexpr double wh_to_j(double wh) noexcept { return wh * 3600.0; }
/// Converts joules to watt-hours.
[[nodiscard]] constexpr double j_to_wh(double j) noexcept { return j / 3600.0; }
/// Converts kilowatt-hours to joules.
[[nodiscard]] constexpr double kwh_to_j(double kwh) noexcept { return kwh * 3.6e6; }
/// Converts joules to kilowatt-hours.
[[nodiscard]] constexpr double j_to_kwh(double j) noexcept { return j / 3.6e6; }

/// Converts ampere-hours to coulombs.
[[nodiscard]] constexpr double ah_to_coulomb(double ah) noexcept { return ah * 3600.0; }
/// Converts coulombs to ampere-hours.
[[nodiscard]] constexpr double coulomb_to_ah(double c) noexcept { return c / 3600.0; }

/// Converts megabits per second to bits per second.
[[nodiscard]] constexpr double mbit_s_to_bit_s(double mbit) noexcept { return mbit * 1e6; }

}  // namespace ev::util
