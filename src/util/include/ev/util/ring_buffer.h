/// \file ring_buffer.h
/// Fixed-capacity circular buffer. Used by ECU task queues and trace
/// recorders where bounded memory matters (automotive software avoids
/// unbounded dynamic allocation in steady state).
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

namespace ev::util {

/// Bounded FIFO over a pre-allocated array. push() fails (returns false) when
/// full rather than reallocating, matching the static-allocation discipline
/// of safety-critical automotive code.
template <typename T>
class RingBuffer {
 public:
  /// Creates a buffer holding at most \p capacity elements (must be > 0).
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer: capacity must be positive");
  }

  /// Appends \p value if space remains; returns false when full.
  [[nodiscard]] bool push(T value) {
    if (full()) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
    return true;
  }

  /// Removes and returns the oldest element, or nullopt when empty.
  [[nodiscard]] std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return value;
  }

  /// Oldest element without removal; throws when empty.
  [[nodiscard]] const T& front() const {
    if (empty()) throw std::out_of_range("RingBuffer::front on empty buffer");
    return slots_[head_];
  }

  /// Number of stored elements.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Maximum number of elements.
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  /// True when no elements are stored.
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// True when no space remains.
  [[nodiscard]] bool full() const noexcept { return size_ == slots_.size(); }
  /// Discards all elements.
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ev::util
