/// \file logging.h
/// Minimal leveled logger for examples and diagnostics. Quiet by default so
/// test and benchmark output stays clean; examples raise the level.
#pragma once

#include <string>

namespace ev::util {

/// Severity levels, most severe last.
enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum severity that is emitted.
void set_log_level(LogLevel level) noexcept;
/// Current global minimum severity.
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits \p message at \p level to stdout if it passes the global filter.
void log(LogLevel level, const std::string& message);

/// Convenience wrappers.
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace ev::util
