/// \file rng.h
/// Deterministic pseudo-random number generation. All stochastic behaviour in
/// evsys flows from an explicitly seeded Rng so that every simulation is
/// bit-reproducible; no module may use std::rand or a default-seeded engine.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace ev::util {

/// xoshiro256** pseudo-random generator (Blackman/Vigna). Chosen for speed,
/// statistical quality, and a trivially serializable 256-bit state.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  /// Returns the next 64 uniformly distributed bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in the closed range [lo, hi]. Always consumes exactly
  /// one next_u64() draw, so the stream position is range-independent.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    // Subtract in the unsigned domain: hi - lo as int64 overflows (UB) for
    // wide ranges. span wraps to 0 when [lo, hi] covers all 2^64 values —
    // there the raw draw already is the answer, and `% 0` would divide by
    // zero. Every other range takes the historical path unchanged, so
    // same-seed streams (and the golden JSONs derived from them) are stable.
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    const std::uint64_t draw = next_u64();
    if (span == 0) return static_cast<std::int64_t>(draw);
    // lo + offset stays in the unsigned domain too: for spans wider than
    // int64's positive range the signed addition could itself overflow.
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw % span);
  }

  /// Standard normal variate (Marsaglia polar method).
  [[nodiscard]] double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential variate with the given rate parameter lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept {
    return -std::log(1.0 - uniform()) / lambda;
  }

  /// Bernoulli trial that succeeds with probability \p p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ev::util
