/// \file stats.h
/// Streaming and batch statistics used by the benchmark harness and the
/// simulation trace analyses (latency/jitter percentiles, energy accounting).
#pragma once

#include <cstddef>
#include <vector>

namespace ev::util {

/// Welford streaming accumulator for mean/variance/min/max over a scalar
/// series. O(1) memory; suitable for long simulations.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations added so far.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Arithmetic mean; 0 if empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 if fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation; +inf if empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation; -inf if empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Peak-to-peak spread (max - min); 0 if empty.
  [[nodiscard]] double range() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch series that retains all samples so order statistics are available.
/// Used where percentiles matter (e.g. latency distributions).
class SampleSeries {
 public:
  /// Appends one sample.
  void add(double x);
  /// Number of samples.
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  /// Arithmetic mean; 0 if empty.
  [[nodiscard]] double mean() const noexcept;
  /// Sample standard deviation; 0 with fewer than two samples.
  [[nodiscard]] double stddev() const noexcept;
  /// Minimum; 0 if empty.
  [[nodiscard]] double min() const noexcept;
  /// Maximum; 0 if empty.
  [[nodiscard]] double max() const noexcept;
  /// Linear-interpolated percentile, \p p in [0,100]; 0 if empty.
  [[nodiscard]] double percentile(double p) const;
  /// Read-only access to the raw samples in insertion order.
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> sorted_;  // lazily maintained sorted copy
  mutable bool sorted_valid_ = false;
  std::vector<double> samples_;
};

/// Equal-width histogram over [lo, hi); samples outside are clamped to the
/// boundary bins. Used to render latency distributions in bench output.
class Histogram {
 public:
  /// Creates a histogram with \p bins equal-width buckets covering [lo, hi).
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation.
  void add(double x) noexcept;
  /// Count in bucket \p i.
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  /// Number of buckets.
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  /// Center value of bucket \p i.
  [[nodiscard]] double bin_center(std::size_t i) const noexcept;
  /// Total observations added.
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ev::util
