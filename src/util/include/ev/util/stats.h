/// \file stats.h
/// Streaming and batch statistics used by the benchmark harness and the
/// simulation trace analyses (latency/jitter percentiles, energy accounting).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace ev::util {

/// Welford streaming accumulator for mean/variance/min/max over a scalar
/// series. O(1) memory; suitable for long simulations.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Folds \p other into this accumulator (parallel Welford / Chan's
  /// formula). The combination is symmetric: merge(A, B) and merge(B, A)
  /// produce bit-identical state, so order-independent aggregation (e.g.
  /// per-seed campaign shards) is deterministic for any shard count.
  void merge(const RunningStats& other) noexcept;

  /// Number of observations added so far.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Arithmetic mean; 0 if empty.
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 if fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation; +inf if empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation; -inf if empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Peak-to-peak spread (max - min); 0 if empty.
  [[nodiscard]] double range() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  // Empty-state identities of min/max, so the documented "+inf/-inf if
  // empty" contract holds and merge() needs no empty special case.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch series that retains all samples so order statistics are available.
/// Used where percentiles matter (e.g. latency distributions).
class SampleSeries {
 public:
  /// Appends one sample.
  void add(double x);
  /// Number of samples.
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  /// Arithmetic mean; 0 if empty.
  [[nodiscard]] double mean() const noexcept;
  /// Sample standard deviation; 0 with fewer than two samples.
  [[nodiscard]] double stddev() const noexcept;
  /// Minimum; 0 if empty.
  [[nodiscard]] double min() const noexcept;
  /// Maximum; 0 if empty.
  [[nodiscard]] double max() const noexcept;
  /// Linear-interpolated percentile, \p p in [0,100]; 0 if empty.
  [[nodiscard]] double percentile(double p) const;
  /// Read-only access to the raw samples in insertion order.
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> sorted_;  // lazily maintained sorted copy
  mutable bool sorted_valid_ = false;
  std::vector<double> samples_;
};

/// Equal-width histogram over [lo, hi); samples outside are clamped to the
/// boundary bins and NaN observations land in a dedicated counted bucket,
/// so bin_count(0..bins-1) + nan_count() == total(). Used to render latency
/// distributions in bench output.
class Histogram {
 public:
  /// Creates a histogram with \p bins equal-width buckets covering [lo, hi).
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation.
  void add(double x) noexcept;
  /// Folds \p other's buckets into this histogram. Both must cover the same
  /// [lo, hi) range with the same bucket count; throws std::invalid_argument
  /// otherwise. Counter addition makes the merge order-independent.
  void merge(const Histogram& other);
  /// Count in bucket \p i.
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  /// Number of buckets.
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  /// Center value of bucket \p i.
  [[nodiscard]] double bin_center(std::size_t i) const noexcept;
  /// Lower edge of the covered range.
  [[nodiscard]] double lo() const noexcept { return lo_; }
  /// Upper edge of the covered range.
  [[nodiscard]] double hi() const noexcept { return hi_; }
  /// Total observations added (including NaN observations).
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// NaN observations, counted apart from the value buckets.
  [[nodiscard]] std::size_t nan_count() const noexcept { return nan_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_ = 0;
};

}  // namespace ev::util
