/// \file math.h
/// Small math helpers shared across evsys modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace ev::util {

/// Mathematical constant pi as double.
inline constexpr double kPi = std::numbers::pi;
/// Two pi, the full circle in radians.
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Clamps \p x into the closed interval [lo, hi].
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) noexcept {
  return std::min(std::max(x, lo), hi);
}

/// Linear interpolation between \p a and \p b with parameter \p t in [0,1].
[[nodiscard]] constexpr double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// Returns -1, 0, or +1 according to the sign of \p x.
[[nodiscard]] constexpr int sign(double x) noexcept {
  return (x > 0.0) - (x < 0.0);
}

/// Wraps an angle in radians into [0, 2*pi).
[[nodiscard]] inline double wrap_angle(double theta) noexcept {
  double t = std::fmod(theta, kTwoPi);
  if (t < 0.0) t += kTwoPi;
  return t;
}

/// Wraps an angle in radians into [-pi, pi).
[[nodiscard]] inline double wrap_angle_signed(double theta) noexcept {
  double t = wrap_angle(theta + kPi);
  return t - kPi;
}

/// True if \p a and \p b differ by at most \p abs_tol plus \p rel_tol
/// of the larger magnitude.
[[nodiscard]] inline bool approx_equal(double a, double b, double abs_tol = 1e-9,
                                       double rel_tol = 1e-9) noexcept {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

/// Integer ceiling division for non-negative operands.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t num, std::int64_t den) noexcept {
  return (num + den - 1) / den;
}

/// Greatest common divisor (Euclid); both operands must be positive.
[[nodiscard]] constexpr std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept {
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple of positive operands; may overflow for huge inputs.
[[nodiscard]] constexpr std::int64_t lcm64(std::int64_t a, std::int64_t b) noexcept {
  return a / gcd64(a, b) * b;
}

}  // namespace ev::util
