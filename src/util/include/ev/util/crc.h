/// \file crc.h
/// Cyclic redundancy checks used by the in-vehicle network models: CRC-15
/// (the CAN frame checksum polynomial) and CRC-32 (IEEE 802.3, used by the
/// Ethernet frame model).
#pragma once

#include <cstdint>
#include <span>

namespace ev::util {

/// CRC-15/CAN over \p data: polynomial 0x4599, init 0, no reflection.
/// Returns the 15-bit checksum in the low bits.
[[nodiscard]] std::uint16_t crc15_can(std::span<const std::uint8_t> data) noexcept;

/// CRC-32/IEEE (Ethernet FCS): reflected polynomial 0xEDB88320, init and
/// final xor 0xFFFFFFFF.
[[nodiscard]] std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) noexcept;

}  // namespace ev::util
