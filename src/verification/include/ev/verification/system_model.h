/// \file system_model.h
/// Nondeterministic models of the communication system's possible
/// transmission patterns. Interference (arbitration losses, retransmission
/// windows, schedule gaps) is abstracted into nondeterministic drop choices;
/// the model checker then asks whether *any* resolvable behaviour violates
/// the control requirement.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ev/verification/automaton.h"

namespace ev::verification {

/// One nondeterministic transition.
struct NfaEdge {
  Slot symbol = Slot::kTransmit;
  std::size_t next = 0;
};

/// Nondeterministic finite automaton describing the per-slot behaviours the
/// communication system can exhibit. State 0 is initial; every state must
/// have at least one outgoing edge (communication never halts).
class TransmissionSystem {
 public:
  TransmissionSystem(std::vector<std::vector<NfaEdge>> edges, std::string description);

  /// Outgoing edges of \p state.
  [[nodiscard]] const std::vector<NfaEdge>& edges(std::size_t state) const {
    return edges_.at(state);
  }
  /// Number of states.
  [[nodiscard]] std::size_t state_count() const noexcept { return edges_.size(); }
  /// Description for reports.
  [[nodiscard]] const std::string& description() const noexcept { return description_; }

  /// A time-triggered link: transmits every slot, except that each schedule
  /// cycle of \p cycle slots contains \p gap_slots contiguous slots where
  /// the message is not scheduled (deterministic drops).
  [[nodiscard]] static TransmissionSystem time_triggered(std::size_t cycle,
                                                         std::size_t gap_slots);

  /// An event-triggered (arbitrated) link: in every slot the message may
  /// lose arbitration, but after \p max_burst consecutive losses the
  /// priority ceiling guarantees a win. Nondeterministic within that bound.
  [[nodiscard]] static TransmissionSystem arbitrated(std::size_t max_burst);

  /// An unreliable link: every slot may nondeterministically drop with no
  /// bound (models best-effort Ethernet without shaping).
  [[nodiscard]] static TransmissionSystem unbounded_drops();

 private:
  std::vector<std::vector<NfaEdge>> edges_;
  std::string description_;
};

}  // namespace ev::verification
