/// \file automaton.h
/// Requirement monitors for distributed control verification ([28],[29]).
/// The control-performance interface is an omega-regular language over the
/// per-slot alphabet {drop, transmit}: a control loop stays stable as long
/// as the transmission pattern stays inside the language (e.g. "at least m
/// transmissions in every window of n", "never k consecutive drops").
/// Monitors are complete safety DFAs with a trap error state; a pattern
/// violates the requirement iff it drives the monitor into the error state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ev::verification {

/// Alphabet symbol: what happened in one communication slot.
enum class Slot : std::uint8_t {
  kDrop = 0,      ///< Control message not transmitted in this slot.
  kTransmit = 1,  ///< Control message transmitted.
};

/// Complete deterministic safety monitor over the {drop, transmit} alphabet.
class MonitorDfa {
 public:
  /// \p transitions[state][symbol] gives the successor; \p error_state must
  /// be a trap (self-loop on both symbols).
  MonitorDfa(std::vector<std::array<std::size_t, 2>> transitions, std::size_t initial_state,
             std::size_t error_state, std::string description);

  /// Successor of \p state on \p symbol.
  [[nodiscard]] std::size_t next(std::size_t state, Slot symbol) const {
    return transitions_.at(state)[static_cast<std::size_t>(symbol)];
  }
  /// Number of states.
  [[nodiscard]] std::size_t state_count() const noexcept { return transitions_.size(); }
  /// Initial state.
  [[nodiscard]] std::size_t initial_state() const noexcept { return initial_state_; }
  /// The trap error state.
  [[nodiscard]] std::size_t error_state() const noexcept { return error_state_; }
  /// True when \p state is the error state.
  [[nodiscard]] bool is_error(std::size_t state) const noexcept {
    return state == error_state_;
  }
  /// Human-readable description of the requirement.
  [[nodiscard]] const std::string& description() const noexcept { return description_; }

  /// Runs the monitor over \p pattern from the initial state; returns true
  /// when the pattern stays safe (never reaches error).
  [[nodiscard]] bool accepts(const std::vector<Slot>& pattern) const;

  /// Requirement: at least \p m transmissions in every window of \p n
  /// consecutive slots (sliding window; the history before the pattern is
  /// assumed all-transmit). States encode the last n-1 symbols, so the
  /// monitor has 2^(n-1) + 1 states — the state growth that drives the
  /// scalability experiment E14.
  [[nodiscard]] static MonitorDfa at_least_m_of_n(std::size_t m, std::size_t n);

  /// Requirement: never more than \p k consecutive drops (k+2 states).
  [[nodiscard]] static MonitorDfa max_consecutive_drops(std::size_t k);

 private:
  std::vector<std::array<std::size_t, 2>> transitions_;
  std::size_t initial_state_;
  std::size_t error_state_;
  std::string description_;
};

}  // namespace ev::verification
