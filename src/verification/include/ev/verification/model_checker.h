/// \file model_checker.h
/// Safety model checking: explores the synchronous product of the
/// communication-system NFA and the requirement monitor DFA and decides
/// whether the monitor's error state is reachable — i.e. whether *some*
/// resolvable system behaviour violates the control-performance interface.
/// Produces a counterexample transmission pattern when it is.
#pragma once

#include <cstddef>
#include <vector>

#include "ev/verification/automaton.h"
#include "ev/verification/system_model.h"

namespace ev::verification {

/// Verdict of a verification run.
struct VerificationResult {
  bool verified = false;              ///< True: no violating behaviour exists.
  std::vector<Slot> counterexample;   ///< Violating pattern when !verified.
  std::size_t product_states = 0;     ///< Reachable product states explored.
  std::size_t transitions_explored = 0;
};

/// Checks \p system against \p requirement by product reachability (BFS, so
/// the counterexample is minimal in length).
[[nodiscard]] VerificationResult verify(const TransmissionSystem& system,
                                        const MonitorDfa& requirement);

}  // namespace ev::verification
