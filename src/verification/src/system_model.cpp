#include "ev/verification/system_model.h"

#include <stdexcept>

namespace ev::verification {

TransmissionSystem::TransmissionSystem(std::vector<std::vector<NfaEdge>> edges,
                                       std::string description)
    : edges_(std::move(edges)), description_(std::move(description)) {
  if (edges_.empty()) throw std::invalid_argument("TransmissionSystem: no states");
  for (const auto& outgoing : edges_) {
    if (outgoing.empty())
      throw std::invalid_argument("TransmissionSystem: state without outgoing edge");
    for (const NfaEdge& e : outgoing)
      if (e.next >= edges_.size())
        throw std::invalid_argument("TransmissionSystem: edge target out of range");
  }
}

TransmissionSystem TransmissionSystem::time_triggered(std::size_t cycle,
                                                      std::size_t gap_slots) {
  if (cycle == 0 || gap_slots >= cycle)
    throw std::invalid_argument("time_triggered: need gap_slots < cycle, cycle > 0");
  // State k = position in the schedule cycle; the gap occupies the last
  // gap_slots positions.
  std::vector<std::vector<NfaEdge>> edges(cycle);
  for (std::size_t k = 0; k < cycle; ++k) {
    const bool scheduled = k < cycle - gap_slots;
    edges[k].push_back(NfaEdge{scheduled ? Slot::kTransmit : Slot::kDrop, (k + 1) % cycle});
  }
  return TransmissionSystem(std::move(edges),
                            "time-triggered, " + std::to_string(gap_slots) +
                                " gap slots per cycle of " + std::to_string(cycle));
}

TransmissionSystem TransmissionSystem::arbitrated(std::size_t max_burst) {
  // State k = consecutive arbitration losses so far. Below the bound the
  // slot may go either way; at the bound the win is forced.
  std::vector<std::vector<NfaEdge>> edges(max_burst + 1);
  for (std::size_t k = 0; k <= max_burst; ++k) {
    edges[k].push_back(NfaEdge{Slot::kTransmit, 0});
    if (k < max_burst) edges[k].push_back(NfaEdge{Slot::kDrop, k + 1});
  }
  return TransmissionSystem(std::move(edges), "arbitrated, max loss burst " +
                                                  std::to_string(max_burst));
}

TransmissionSystem TransmissionSystem::unbounded_drops() {
  std::vector<std::vector<NfaEdge>> edges(1);
  edges[0].push_back(NfaEdge{Slot::kTransmit, 0});
  edges[0].push_back(NfaEdge{Slot::kDrop, 0});
  return TransmissionSystem(std::move(edges), "best-effort, unbounded drops");
}

}  // namespace ev::verification
