#include "ev/verification/model_checker.h"

#include <algorithm>
#include <deque>
#include <vector>

namespace ev::verification {

VerificationResult verify(const TransmissionSystem& system, const MonitorDfa& requirement) {
  VerificationResult result;
  const std::size_t sys_n = system.state_count();
  const std::size_t mon_n = requirement.state_count();
  const auto index = [mon_n](std::size_t s, std::size_t m) { return s * mon_n + m; };

  // Parent pointers for counterexample reconstruction: (prev index, symbol).
  struct Parent {
    std::size_t prev = SIZE_MAX;
    Slot symbol = Slot::kTransmit;
  };
  std::vector<bool> visited(sys_n * mon_n, false);
  std::vector<Parent> parent(sys_n * mon_n);

  const std::size_t start = index(0, requirement.initial_state());
  std::deque<std::size_t> queue{start};
  visited[start] = true;

  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    const std::size_t sys_state = cur / mon_n;
    const std::size_t mon_state = cur % mon_n;

    for (const NfaEdge& edge : system.edges(sys_state)) {
      ++result.transitions_explored;
      const std::size_t mon_next = requirement.next(mon_state, edge.symbol);
      const std::size_t nxt = index(edge.next, mon_next);
      if (requirement.is_error(mon_next)) {
        // Violation found: reconstruct the minimal pattern.
        std::vector<Slot> pattern{edge.symbol};
        std::size_t walk = cur;
        while (walk != start) {
          pattern.push_back(parent[walk].symbol);
          walk = parent[walk].prev;
        }
        std::reverse(pattern.begin(), pattern.end());
        result.counterexample = std::move(pattern);
        result.product_states =
            static_cast<std::size_t>(std::count(visited.begin(), visited.end(), true));
        return result;
      }
      if (!visited[nxt]) {
        visited[nxt] = true;
        parent[nxt] = Parent{cur, edge.symbol};
        queue.push_back(nxt);
      }
    }
  }

  result.verified = true;
  result.product_states =
      static_cast<std::size_t>(std::count(visited.begin(), visited.end(), true));
  return result;
}

}  // namespace ev::verification
