#include "ev/verification/automaton.h"

#include <bit>
#include <stdexcept>

namespace ev::verification {

MonitorDfa::MonitorDfa(std::vector<std::array<std::size_t, 2>> transitions,
                       std::size_t initial_state, std::size_t error_state,
                       std::string description)
    : transitions_(std::move(transitions)),
      initial_state_(initial_state),
      error_state_(error_state),
      description_(std::move(description)) {
  if (transitions_.empty()) throw std::invalid_argument("MonitorDfa: no states");
  if (initial_state_ >= transitions_.size() || error_state_ >= transitions_.size())
    throw std::invalid_argument("MonitorDfa: state index out of range");
  for (const auto& row : transitions_)
    for (std::size_t next : row)
      if (next >= transitions_.size())
        throw std::invalid_argument("MonitorDfa: transition target out of range");
  if (transitions_[error_state_][0] != error_state_ ||
      transitions_[error_state_][1] != error_state_)
    throw std::invalid_argument("MonitorDfa: error state must be a trap");
}

bool MonitorDfa::accepts(const std::vector<Slot>& pattern) const {
  std::size_t state = initial_state_;
  for (Slot s : pattern) {
    state = next(state, s);
    if (is_error(state)) return false;
  }
  return true;
}

MonitorDfa MonitorDfa::at_least_m_of_n(std::size_t m, std::size_t n) {
  if (n == 0 || n > 20) throw std::invalid_argument("at_least_m_of_n: n must be in 1..20");
  if (m > n) throw std::invalid_argument("at_least_m_of_n: m must be <= n");
  const std::size_t hist_bits = n - 1;
  const std::size_t hist_states = std::size_t{1} << hist_bits;
  const std::size_t error = hist_states;
  std::vector<std::array<std::size_t, 2>> tr(hist_states + 1);
  for (std::size_t h = 0; h < hist_states; ++h) {
    for (std::size_t sym = 0; sym < 2; ++sym) {
      // The completed window is the history plus the incoming symbol.
      const std::size_t ones =
          static_cast<std::size_t>(std::popcount(h)) + sym;
      if (ones < m) {
        tr[h][sym] = error;
      } else {
        const std::size_t mask = hist_states - 1;
        tr[h][sym] = hist_bits == 0 ? 0 : ((h << 1) | sym) & mask;
      }
    }
  }
  tr[error] = {error, error};
  const std::size_t initial = hist_states - 1;  // all-transmit history
  return MonitorDfa(std::move(tr), initial, error,
                    "at least " + std::to_string(m) + " transmissions per window of " +
                        std::to_string(n));
}

MonitorDfa MonitorDfa::max_consecutive_drops(std::size_t k) {
  // States 0..k count current consecutive drops; k+1 is the error trap.
  const std::size_t error = k + 1;
  std::vector<std::array<std::size_t, 2>> tr(k + 2);
  for (std::size_t c = 0; c <= k; ++c) {
    tr[c][static_cast<std::size_t>(Slot::kTransmit)] = 0;
    tr[c][static_cast<std::size_t>(Slot::kDrop)] = c + 1 > k ? error : c + 1;
  }
  tr[error] = {error, error};
  return MonitorDfa(std::move(tr), 0, error,
                    "never more than " + std::to_string(k) + " consecutive drops");
}

}  // namespace ev::verification
