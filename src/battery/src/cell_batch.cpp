#include "ev/battery/cell_batch.h"

#include <cmath>

#include "ev/util/math.h"

namespace ev::battery {

CellBatch::CellBatch(const std::vector<Cell>& cells) {
  const std::size_t n = cells.size();
  soc_.reserve(n);
  capacity_ah_.reserve(n);
  v_rc1_.reserve(n);
  v_rc2_.reserve(n);
  temp_c_.reserve(n);
  throughput_ah_.reserve(n);
  dissipated_j_.reserve(n);
  params_.reserve(n);
  curves_.reserve(n);
  for (const Cell& c : cells) {
    soc_.push_back(c.soc());
    capacity_ah_.push_back(c.capacity_ah());
    v_rc1_.push_back(c.v_rc1());
    v_rc2_.push_back(c.v_rc2());
    temp_c_.push_back(c.temperature_c());
    throughput_ah_.push_back(c.throughput_ah());
    dissipated_j_.push_back(c.dissipated_j());
    params_.push_back(c.params());
    curves_.push_back(c.shared_curve());
  }
  a1_.resize(n);
  k1_.resize(n);
  a2_.resize(n);
  k2_.resize(n);
}

void CellBatch::refresh_coefficients(double dt_s) {
  // a = exp(-dt/tau) and k = r*(1-a) are exactly the factors Cell::step
  // derives each call; dt is constant within a scenario, so this runs once.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const CellParameters& p = params_[i];
    const double tau1 = p.r1_ohm * p.c1_farad;
    const double tau2 = p.r2_ohm * p.c2_farad;
    a1_[i] = std::exp(-dt_s / tau1);
    a2_[i] = std::exp(-dt_s / tau2);
    k1_[i] = p.r1_ohm * (1.0 - a1_[i]);
    k2_[i] = p.r2_ohm * (1.0 - a2_[i]);
  }
  cached_dt_s_ = dt_s;
}

BatchStatus CellBatch::step_all(std::span<const double> current_a,
                                std::span<const double> extra_heat_w, double dt_s,
                                double ambient_c) {
  if (dt_s != cached_dt_s_) refresh_coefficients(dt_s);
  BatchStatus status;
  const std::size_t n = soc_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const CellParameters& p = params_[i];
    const double amps = current_a[i];

    // --- Coulomb dynamics (identical operation order to Cell::step) --------
    const double dq = amps * dt_s;
    const double cap_c = capacity_ah_[i] * 3600.0;
    soc_[i] = util::clamp(soc_[i] - dq / cap_c, 0.0, 1.0);
    throughput_ah_[i] += std::fabs(dq) / 3600.0;

    // --- Polarization branches: v = a*v + (r*(1-a))*I, coefficients cached --
    v_rc1_[i] = a1_[i] * v_rc1_[i] + k1_[i] * amps;
    v_rc2_[i] = a2_[i] * v_rc2_[i] + k2_[i] * amps;

    // --- Losses and thermal node -------------------------------------------
    const double p_ohmic = amps * amps * p.r0_ohm;
    const double p_polar =
        v_rc1_[i] * v_rc1_[i] / p.r1_ohm + v_rc2_[i] * v_rc2_[i] / p.r2_ohm;
    const double p_loss = p_ohmic + p_polar;
    dissipated_j_[i] += p_loss * dt_s;
    const double p_cooling = (temp_c_[i] - ambient_c) / p.thermal_resistance_k_per_w;
    temp_c_[i] += (p_loss + extra_heat_w[i] - p_cooling) / p.thermal_capacity_j_per_k * dt_s;

    // --- Ageing -------------------------------------------------------------
    double stress = 1.0;
    if (soc_[i] > 0.9) stress += 2.0 * (soc_[i] - 0.9) * 10.0;
    if (soc_[i] < 0.1) stress += 2.0 * (0.1 - soc_[i]) * 10.0;
    if (temp_c_[i] > 40.0) stress += (temp_c_[i] - 40.0) / 10.0;
    capacity_ah_[i] -=
        p.capacity_ah * p.fade_per_ah_throughput * (std::fabs(dq) / 3600.0) * stress;
    capacity_ah_[i] = std::max(capacity_ah_[i], 0.5 * p.capacity_ah);

    // --- Safety envelope ----------------------------------------------------
    const double v_term = terminal_voltage(i, amps);
    const bool overvoltage = v_term > p.max_voltage;
    const bool undervoltage = v_term < p.min_voltage;
    const bool overtemperature = temp_c_[i] > p.max_temperature_c;
    const bool thermal_runaway = temp_c_[i] > p.runaway_temperature_c;
    const bool overcurrent =
        amps > p.max_discharge_current_a || -amps > p.max_charge_current_a;
    if (overvoltage || undervoltage || overtemperature || overcurrent || thermal_runaway)
      ++status.alarm_count;
    status.worst.overvoltage |= overvoltage;
    status.worst.undervoltage |= undervoltage;
    status.worst.overtemperature |= overtemperature;
    status.worst.overcurrent |= overcurrent;
    status.worst.thermal_runaway |= thermal_runaway;
  }
  return status;
}

void CellBatch::inject_charge(std::size_t i, double coulombs) noexcept {
  const double cap_c = capacity_ah_[i] * 3600.0;
  soc_[i] = util::clamp(soc_[i] + coulombs / cap_c, 0.0, 1.0);
}

}  // namespace ev::battery
