#include "ev/battery/module.h"

#include <algorithm>
#include <stdexcept>

namespace ev::battery {

SeriesModule::SeriesModule(std::vector<Cell> cells, BalancingHardware hw)
    : cells_(std::move(cells)), hw_(hw) {
  if (cells_.empty()) throw std::invalid_argument("SeriesModule: need at least one cell");
  bleed_on_.assign(cells_.size(), false);
}

void SeriesModule::set_bleed(std::size_t i, bool on) { bleed_on_.at(i) = on; }

bool SeriesModule::bleed_engaged(std::size_t i) const { return bleed_on_.at(i); }

void SeriesModule::command_transfer(std::size_t from, std::size_t to) {
  if (from >= cells_.size() || to >= cells_.size())
    throw std::out_of_range("SeriesModule::command_transfer: cell index out of range");
  if (from == to)
    throw std::invalid_argument("SeriesModule::command_transfer: from == to");
  transfer_from_ = from;
  transfer_to_ = to;
  transfer_active_ = true;
}

void SeriesModule::clear_transfer() noexcept { transfer_active_ = false; }

ModuleStatus SeriesModule::step(double current_a, double dt_s, double ambient_c) {
  ModuleStatus status;

  // Active transfer: remove dq from the source, deliver eta*dq to the sink.
  double transfer_out_c = 0.0;
  double transfer_in_c = 0.0;
  if (transfer_active_) {
    transfer_out_c = hw_.transfer_current_a * dt_s;
    transfer_in_c = transfer_out_c * hw_.transfer_efficiency;
    // Source must actually hold the charge; clamp at empty.
    transfer_out_c = std::min(transfer_out_c, cells_[transfer_from_].charge_coulomb());
    transfer_in_c = transfer_out_c * hw_.transfer_efficiency;
    transfer_loss_j_ += (transfer_out_c - transfer_in_c) *
                        cells_[transfer_from_].open_circuit_voltage();
  }

  for (std::size_t i = 0; i < cells_.size(); ++i) {
    double cell_current = current_a;
    double extra_heat_w = 0.0;
    if (bleed_on_[i]) {
      const double v = cells_[i].terminal_voltage(current_a);
      const double i_bleed = std::max(v, 0.0) / hw_.bleed_resistor_ohm;
      cell_current += i_bleed;  // bleed adds discharge on this cell only
      const double p_bleed = i_bleed * i_bleed * hw_.bleed_resistor_ohm;
      extra_heat_w = p_bleed;  // resistor heat sinks into the cell vicinity
      bleed_energy_j_ += p_bleed * dt_s;
    }
    const CellStatus cs = cells_[i].step(cell_current, dt_s, ambient_c, extra_heat_w);
    if (cs.any()) ++status.alarm_count;
    status.worst.overvoltage |= cs.overvoltage;
    status.worst.undervoltage |= cs.undervoltage;
    status.worst.overtemperature |= cs.overtemperature;
    status.worst.overcurrent |= cs.overcurrent;
    status.worst.thermal_runaway |= cs.thermal_runaway;
  }

  if (transfer_active_ && transfer_out_c > 0.0) {
    cells_[transfer_from_].inject_charge(-transfer_out_c);
    cells_[transfer_to_].inject_charge(transfer_in_c);
  }
  return status;
}

double SeriesModule::terminal_voltage(double current_a) const noexcept {
  double v = 0.0;
  for (const auto& c : cells_) v += c.terminal_voltage(current_a);
  return v;
}

double SeriesModule::min_soc() const noexcept {
  double m = cells_.front().soc();
  for (const auto& c : cells_) m = std::min(m, c.soc());
  return m;
}

double SeriesModule::max_soc() const noexcept {
  double m = cells_.front().soc();
  for (const auto& c : cells_) m = std::max(m, c.soc());
  return m;
}

}  // namespace ev::battery
