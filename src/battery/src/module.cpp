#include "ev/battery/module.h"

#include <algorithm>
#include <stdexcept>

namespace ev::battery {

SeriesModule::SeriesModule(std::vector<Cell> cells, BalancingHardware hw)
    : batch_(cells), hw_(hw) {
  if (cells.empty()) throw std::invalid_argument("SeriesModule: need at least one cell");
  bleed_on_.assign(batch_.size(), false);
  scratch_current_.resize(batch_.size());
  scratch_heat_.resize(batch_.size());
}

void SeriesModule::check_index(std::size_t i) const {
  if (i >= batch_.size()) throw std::out_of_range("SeriesModule: cell index out of range");
}

void SeriesModule::set_bleed(std::size_t i, bool on) { bleed_on_.at(i) = on; }

bool SeriesModule::bleed_engaged(std::size_t i) const { return bleed_on_.at(i); }

void SeriesModule::command_transfer(std::size_t from, std::size_t to) {
  if (from >= batch_.size() || to >= batch_.size())
    throw std::out_of_range("SeriesModule::command_transfer: cell index out of range");
  if (from == to)
    throw std::invalid_argument("SeriesModule::command_transfer: from == to");
  transfer_from_ = from;
  transfer_to_ = to;
  transfer_active_ = true;
}

void SeriesModule::clear_transfer() noexcept { transfer_active_ = false; }

ModuleStatus SeriesModule::step(double current_a, double dt_s, double ambient_c) {
  // Active transfer: remove dq from the source, deliver eta*dq to the sink.
  double transfer_out_c = 0.0;
  double transfer_in_c = 0.0;
  if (transfer_active_) {
    transfer_out_c = hw_.transfer_current_a * dt_s;
    transfer_in_c = transfer_out_c * hw_.transfer_efficiency;
    // Source must actually hold the charge; clamp at empty.
    transfer_out_c = std::min(transfer_out_c, batch_.charge_coulomb(transfer_from_));
    transfer_in_c = transfer_out_c * hw_.transfer_efficiency;
    transfer_loss_j_ += (transfer_out_c - transfer_in_c) *
                        batch_.open_circuit_voltage(transfer_from_);
  }

  // Stage per-cell currents and bleed heat from pre-step state, then advance
  // the whole batch in one loop. Cell i's bleed depends only on cell i's own
  // pre-step state, so splitting the original interleaved loop into these two
  // phases is bit-identical.
  const std::size_t n = batch_.size();
  for (std::size_t i = 0; i < n; ++i) {
    double cell_current = current_a;
    double extra_heat_w = 0.0;
    if (bleed_on_[i]) {
      const double v = batch_.terminal_voltage(i, current_a);
      const double i_bleed = std::max(v, 0.0) / hw_.bleed_resistor_ohm;
      cell_current += i_bleed;  // bleed adds discharge on this cell only
      const double p_bleed = i_bleed * i_bleed * hw_.bleed_resistor_ohm;
      extra_heat_w = p_bleed;  // resistor heat sinks into the cell vicinity
      bleed_energy_j_ += p_bleed * dt_s;
    }
    scratch_current_[i] = cell_current;
    scratch_heat_[i] = extra_heat_w;
  }
  const BatchStatus batch_status =
      batch_.step_all(scratch_current_, scratch_heat_, dt_s, ambient_c);
  ModuleStatus status;
  status.worst = batch_status.worst;
  status.alarm_count = batch_status.alarm_count;

  if (transfer_active_ && transfer_out_c > 0.0) {
    batch_.inject_charge(transfer_from_, -transfer_out_c);
    batch_.inject_charge(transfer_to_, transfer_in_c);
  }
  return status;
}

double SeriesModule::terminal_voltage(double current_a) const noexcept {
  double v = 0.0;
  for (std::size_t i = 0; i < batch_.size(); ++i)
    v += batch_.terminal_voltage(i, current_a);
  return v;
}

double SeriesModule::min_soc() const noexcept {
  double m = batch_.soc(0);
  for (std::size_t i = 0; i < batch_.size(); ++i) m = std::min(m, batch_.soc(i));
  return m;
}

double SeriesModule::max_soc() const noexcept {
  double m = batch_.soc(0);
  for (std::size_t i = 0; i < batch_.size(); ++i) m = std::max(m, batch_.soc(i));
  return m;
}

}  // namespace ev::battery
