#include "ev/battery/cell.h"

#include <cmath>

#include "ev/util/math.h"

namespace ev::battery {

Cell::Cell(CellParameters params, OcvCurve curve, double initial_soc, double initial_temp_c)
    : params_(params),
      curve_(std::make_shared<const OcvCurve>(std::move(curve))),
      soc_(util::clamp(initial_soc, 0.0, 1.0)),
      capacity_ah_(params.capacity_ah),
      temp_c_(initial_temp_c) {}

double Cell::open_circuit_voltage() const noexcept { return curve_->voltage(soc_); }

double Cell::terminal_voltage(double current_a) const noexcept {
  // Discharge current drops voltage across R0 and drives the RC branches.
  return open_circuit_voltage() - current_a * params_.r0_ohm - v_rc1_ - v_rc2_;
}

CellStatus Cell::step(double current_a, double dt_s, double ambient_c, double extra_heat_w) {
  CellStatus status;

  // --- Coulomb dynamics ---------------------------------------------------
  const double dq = current_a * dt_s;  // coulombs removed (positive = discharge)
  const double cap_c = capacity_ah_ * 3600.0;
  soc_ = util::clamp(soc_ - dq / cap_c, 0.0, 1.0);
  throughput_ah_ += std::fabs(dq) / 3600.0;

  // --- Polarization branches (exact first-order update) -------------------
  const double tau1 = params_.r1_ohm * params_.c1_farad;
  const double tau2 = params_.r2_ohm * params_.c2_farad;
  const double a1 = std::exp(-dt_s / tau1);
  const double a2 = std::exp(-dt_s / tau2);
  v_rc1_ = a1 * v_rc1_ + params_.r1_ohm * (1.0 - a1) * current_a;
  v_rc2_ = a2 * v_rc2_ + params_.r2_ohm * (1.0 - a2) * current_a;

  // --- Losses and thermal node ---------------------------------------------
  const double p_ohmic = current_a * current_a * params_.r0_ohm;
  const double p_polar = v_rc1_ * v_rc1_ / params_.r1_ohm + v_rc2_ * v_rc2_ / params_.r2_ohm;
  const double p_loss = p_ohmic + p_polar;
  dissipated_j_ += p_loss * dt_s;
  const double p_cooling = (temp_c_ - ambient_c) / params_.thermal_resistance_k_per_w;
  temp_c_ += (p_loss + extra_heat_w - p_cooling) / params_.thermal_capacity_j_per_k * dt_s;

  // --- Ageing: throughput fade, amplified at voltage/temperature extremes --
  double stress = 1.0;
  if (soc_ > 0.9) stress += 2.0 * (soc_ - 0.9) * 10.0;        // high-voltage stress
  if (soc_ < 0.1) stress += 2.0 * (0.1 - soc_) * 10.0;        // deep-discharge stress
  if (temp_c_ > 40.0) stress += (temp_c_ - 40.0) / 10.0;      // Arrhenius-like
  capacity_ah_ -= params_.capacity_ah * params_.fade_per_ah_throughput *
                  (std::fabs(dq) / 3600.0) * stress;
  capacity_ah_ = std::max(capacity_ah_, 0.5 * params_.capacity_ah);

  // --- Safety envelope -----------------------------------------------------
  const double v_term = terminal_voltage(current_a);
  status.overvoltage = v_term > params_.max_voltage;
  status.undervoltage = v_term < params_.min_voltage;
  status.overtemperature = temp_c_ > params_.max_temperature_c;
  status.thermal_runaway = temp_c_ > params_.runaway_temperature_c;
  status.overcurrent = current_a > params_.max_discharge_current_a ||
                       -current_a > params_.max_charge_current_a;
  return status;
}

void Cell::inject_charge(double coulombs) noexcept {
  const double cap_c = capacity_ah_ * 3600.0;
  soc_ = util::clamp(soc_ + coulombs / cap_c, 0.0, 1.0);
}

}  // namespace ev::battery
