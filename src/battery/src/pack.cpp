#include "ev/battery/pack.h"

#include <algorithm>

namespace ev::battery {

Pack::Pack(const PackConfig& config, util::Rng& rng) : rng_(&rng) {
  const OcvCurve curve = config.use_lfp_chemistry ? OcvCurve::lfp() : OcvCurve::nmc();
  modules_.reserve(config.module_count);
  for (std::size_t m = 0; m < config.module_count; ++m) {
    std::vector<Cell> cells;
    cells.reserve(config.cells_per_module);
    for (std::size_t c = 0; c < config.cells_per_module; ++c) {
      CellParameters p = config.cell;
      p.capacity_ah *= 1.0 + rng.normal(0.0, config.capacity_spread_sigma);
      p.r0_ohm *= 1.0 + rng.normal(0.0, config.r0_spread_sigma);
      const double soc = config.initial_soc + rng.normal(0.0, config.soc_spread_sigma);
      cells.emplace_back(p, curve, soc);
    }
    modules_.emplace_back(std::move(cells), config.balancing);
  }
}

void Pack::command_module_transfer(std::size_t from_module, std::size_t to_module) {
  if (from_module >= modules_.size() || to_module >= modules_.size())
    throw std::out_of_range("Pack::command_module_transfer: module out of range");
  if (from_module == to_module)
    throw std::invalid_argument("Pack::command_module_transfer: from == to");
  transfer_from_module_ = from_module;
  transfer_to_module_ = to_module;
  module_transfer_active_ = true;
}

PackStatus Pack::step(double current_a, double dt_s, double ambient_c) {
  PackStatus status;
  status.contactor_closed = contactor_closed_;
  const double string_current = contactor_closed_ ? current_a : 0.0;
  sensed_current_a_ = current_sensor_.measure(string_current, *rng_);

  // Pack-level module-to-module transfer: every cell of the source module
  // gives up charge; every cell of the sink module receives the converter-
  // efficiency share (the module converters tap the whole series string).
  if (module_transfer_active_) {
    SeriesModule& from = modules_[transfer_from_module_];
    SeriesModule& to = modules_[transfer_to_module_];
    const double i_t = from.hardware().transfer_current_a;
    const double eta = from.hardware().transfer_efficiency;
    double dq = i_t * dt_s;
    for (std::size_t c = 0; c < from.cell_count(); ++c)
      dq = std::min(dq, from.cell(c).charge_coulomb());
    for (std::size_t c = 0; c < from.cell_count(); ++c)
      from.cell(c).inject_charge(-dq);
    for (std::size_t c = 0; c < to.cell_count(); ++c)
      to.cell(c).inject_charge(dq * eta);
    module_transfer_loss_j_ +=
        dq * (1.0 - eta) * from.cell(0).open_circuit_voltage() *
        static_cast<double>(from.cell_count());
  }

  for (auto& m : modules_) {
    const ModuleStatus ms = m.step(string_current, dt_s, ambient_c);
    status.worst.alarm_count += ms.alarm_count;
    status.worst.worst.overvoltage |= ms.worst.overvoltage;
    status.worst.worst.undervoltage |= ms.worst.undervoltage;
    status.worst.worst.overtemperature |= ms.worst.overtemperature;
    status.worst.worst.overcurrent |= ms.worst.overcurrent;
    status.worst.worst.thermal_runaway |= ms.worst.thermal_runaway;
  }
  return status;
}

double Pack::terminal_voltage(double current_a) const noexcept {
  if (!contactor_closed_) return 0.0;
  double v = 0.0;
  for (const auto& m : modules_) v += m.terminal_voltage(current_a);
  return v;
}

double Pack::open_circuit_voltage() const noexcept {
  double v = 0.0;
  for (const auto& m : modules_)
    for (std::size_t i = 0; i < m.cell_count(); ++i) v += m.cell(i).open_circuit_voltage();
  return v;
}

std::size_t Pack::cell_count() const noexcept {
  std::size_t n = 0;
  for (const auto& m : modules_) n += m.cell_count();
  return n;
}

double Pack::min_soc() const noexcept {
  double v = modules_.front().min_soc();
  for (const auto& m : modules_) v = std::min(v, m.min_soc());
  return v;
}

double Pack::max_soc() const noexcept {
  double v = modules_.front().max_soc();
  for (const auto& m : modules_) v = std::max(v, m.max_soc());
  return v;
}

double Pack::mean_soc() const noexcept {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& m : modules_) {
    for (std::size_t i = 0; i < m.cell_count(); ++i) {
      sum += m.cell(i).soc();
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double Pack::usable_energy_wh() const noexcept {
  // Series string: discharge ends when the weakest cell reaches empty, so the
  // usable charge equals the minimum cell charge, delivered at the string's
  // summed nominal voltage.
  double min_charge_c = modules_.front().cell(0).charge_coulomb();
  double voltage_sum = 0.0;
  for (const auto& m : modules_) {
    for (std::size_t i = 0; i < m.cell_count(); ++i) {
      min_charge_c = std::min(min_charge_c, m.cell(i).charge_coulomb());
      voltage_sum += m.cell(i).open_circuit_voltage();
    }
  }
  return min_charge_c * voltage_sum / 3600.0;
}

double Pack::total_bleed_energy_j() const noexcept {
  double e = 0.0;
  for (const auto& m : modules_) e += m.bleed_energy_j();
  return e;
}

double Pack::total_transfer_loss_j() const noexcept {
  double e = module_transfer_loss_j_;
  for (const auto& m : modules_) e += m.transfer_loss_j();
  return e;
}

}  // namespace ev::battery
