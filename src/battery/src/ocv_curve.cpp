#include "ev/battery/ocv_curve.h"

#include <algorithm>
#include <stdexcept>

#include "ev/util/math.h"

namespace ev::battery {

OcvCurve::OcvCurve(std::vector<std::pair<double, double>> knots) : knots_(std::move(knots)) {
  if (knots_.size() < 2) throw std::invalid_argument("OcvCurve: need at least two knots");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].first <= knots_[i - 1].first)
      throw std::invalid_argument("OcvCurve: SoC knots must be strictly increasing");
    if (knots_[i].second < knots_[i - 1].second)
      throw std::invalid_argument("OcvCurve: voltage must be non-decreasing in SoC");
  }
  if (knots_.front().first != 0.0 || knots_.back().first != 1.0)
    throw std::invalid_argument("OcvCurve: knots must span SoC [0, 1]");
}

double OcvCurve::voltage(double soc) const noexcept {
  const double s = util::clamp(soc, 0.0, 1.0);
  auto it = std::lower_bound(knots_.begin(), knots_.end(), s,
                             [](const auto& k, double v) { return k.first < v; });
  if (it == knots_.begin()) return it->second;
  if (it == knots_.end()) return knots_.back().second;
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double t = (s - lo.first) / (hi.first - lo.first);
  return util::lerp(lo.second, hi.second, t);
}

double OcvCurve::soc(double volts) const noexcept {
  const double v = util::clamp(volts, min_voltage(), max_voltage());
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (v <= knots_[i].second) {
      const auto& lo = knots_[i - 1];
      const auto& hi = knots_[i];
      if (hi.second == lo.second) return hi.first;  // flat plateau: take upper knot
      const double t = (v - lo.second) / (hi.second - lo.second);
      return util::lerp(lo.first, hi.first, t);
    }
  }
  return 1.0;
}

OcvCurve OcvCurve::nmc() {
  return OcvCurve({{0.00, 3.00},
                   {0.05, 3.35},
                   {0.10, 3.48},
                   {0.20, 3.58},
                   {0.30, 3.64},
                   {0.40, 3.68},
                   {0.50, 3.73},
                   {0.60, 3.80},
                   {0.70, 3.88},
                   {0.80, 3.97},
                   {0.90, 4.07},
                   {1.00, 4.20}});
}

OcvCurve OcvCurve::lfp() {
  return OcvCurve({{0.00, 2.50},
                   {0.03, 3.10},
                   {0.10, 3.20},
                   {0.30, 3.25},
                   {0.70, 3.30},
                   {0.90, 3.33},
                   {0.97, 3.38},
                   {1.00, 3.60}});
}

}  // namespace ev::battery
