#include "ev/battery/sensors.h"

#include <cmath>

namespace ev::battery {

double ScalarSensor::measure(double true_value, util::Rng& rng) const {
  double v = true_value + bias_;
  if (noise_sigma_ > 0.0) v += rng.normal(0.0, noise_sigma_);
  if (quantization_ > 0.0) v = std::round(v / quantization_) * quantization_;
  return v;
}

}  // namespace ev::battery
