#include "ev/battery/sensors.h"

#include <cmath>

namespace ev::battery {

double ScalarSensor::measure(double true_value, util::Rng& rng) {
  switch (fault_.mode) {
    case SensorFaultMode::kStuckAt:
      return fault_.stuck_value;
    case SensorFaultMode::kDropout:
      return fault_.dropout_value;
    case SensorFaultMode::kOffsetDrift:
      drift_accum_ += fault_.drift_per_sample;
      break;
    case SensorFaultMode::kNone:
      break;
  }
  double v = true_value + bias_ + drift_accum_;
  if (noise_sigma_ > 0.0) v += rng.normal(0.0, noise_sigma_);
  if (quantization_ > 0.0) v = std::round(v / quantization_) * quantization_;
  return v;
}

}  // namespace ev::battery
