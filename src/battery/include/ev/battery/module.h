/// \file module.h
/// A battery module: series-connected cells plus the per-cell balancing
/// hardware (passive bleed resistors and an active charge-transfer unit)
/// that the module-management devices of the paper's Fig. 2 control.
///
/// Cell state is stored structure-of-arrays (CellBatch) and advanced with one
/// batched loop per step; cell(i) hands out lightweight views with the same
/// read/inject API the per-object Cell model exposed, so BMS, sensor, and
/// fault-injection call sites are unchanged.
#pragma once

#include <cstddef>
#include <vector>

#include "ev/battery/cell.h"
#include "ev/battery/cell_batch.h"

namespace ev::battery {

/// Aggregated safety status across the cells of one module.
struct ModuleStatus {
  CellStatus worst;           ///< OR of all per-cell flags.
  std::size_t alarm_count = 0;  ///< Number of cells with any flag raised.
};

/// Balancing hardware parameters of a module.
struct BalancingHardware {
  double bleed_resistor_ohm = 33.0;   ///< Passive bleed resistor per cell.
  double transfer_current_a = 5.0;    ///< Active transfer current capability.
  double transfer_efficiency = 0.92;  ///< Charge ratio delivered by the active converter.
};

/// Series string of cells with per-cell balancing actuators. The module does
/// not decide *when* to balance — that is BMS policy (ev::bms) — it only
/// models the electrical consequences of the actuator commands.
class SeriesModule {
 public:
  /// Builds a module from pre-constructed cells (at least one) and the given
  /// balancing hardware. The cells are adopted into SoA batch storage.
  SeriesModule(std::vector<Cell> cells, BalancingHardware hw = {});

  /// Engages (true) or releases (false) the passive bleed switch on cell \p i.
  void set_bleed(std::size_t i, bool on);
  /// True when the bleed switch of cell \p i is closed.
  [[nodiscard]] bool bleed_engaged(std::size_t i) const;

  /// Commands the active unit to move charge from cell \p from to cell
  /// \p to at the hardware transfer current until changed or cleared.
  /// Only one transfer can be active per module (matching a single shared
  /// converter, the common cost-optimized design).
  void command_transfer(std::size_t from, std::size_t to);
  /// Stops any active transfer.
  void clear_transfer() noexcept;
  /// True while an active transfer is commanded.
  [[nodiscard]] bool transfer_active() const noexcept { return transfer_active_; }

  /// Advances every cell by \p dt_s under string current \p current_a
  /// (positive = discharge), applying bleed and transfer currents. Returns
  /// the aggregated safety status.
  ModuleStatus step(double current_a, double dt_s, double ambient_c = 25.0);

  /// Module terminal voltage under \p current_a [V].
  [[nodiscard]] double terminal_voltage(double current_a = 0.0) const noexcept;
  /// Number of series cells.
  [[nodiscard]] std::size_t cell_count() const noexcept { return batch_.size(); }
  /// Read view of cell \p i.
  [[nodiscard]] CellConstView cell(std::size_t i) const {
    check_index(i);
    return CellConstView{batch_, i};
  }
  /// Mutable view of cell \p i (used by fault-injection tests).
  [[nodiscard]] CellView cell(std::size_t i) {
    check_index(i);
    return CellView{batch_, i};
  }
  /// The underlying SoA cell storage.
  [[nodiscard]] const CellBatch& cells() const noexcept { return batch_; }
  /// Lowest true SoC across cells.
  [[nodiscard]] double min_soc() const noexcept;
  /// Highest true SoC across cells.
  [[nodiscard]] double max_soc() const noexcept;
  /// Max-min SoC spread, the quantity balancing drives to zero.
  [[nodiscard]] double soc_spread() const noexcept { return max_soc() - min_soc(); }
  /// Energy dissipated in bleed resistors so far [J].
  [[nodiscard]] double bleed_energy_j() const noexcept { return bleed_energy_j_; }
  /// Energy lost in the active transfer converter so far [J].
  [[nodiscard]] double transfer_loss_j() const noexcept { return transfer_loss_j_; }
  /// Balancing hardware parameters.
  [[nodiscard]] const BalancingHardware& hardware() const noexcept { return hw_; }

 private:
  void check_index(std::size_t i) const;

  CellBatch batch_;
  std::vector<bool> bleed_on_;
  BalancingHardware hw_;
  bool transfer_active_ = false;
  std::size_t transfer_from_ = 0;
  std::size_t transfer_to_ = 0;
  double bleed_energy_j_ = 0.0;
  double transfer_loss_j_ = 0.0;
  // Per-cell current/heat staging for the batched step; member scratch so the
  // steady-state step performs no allocation.
  std::vector<double> scratch_current_;
  std::vector<double> scratch_heat_;
};

}  // namespace ev::battery
