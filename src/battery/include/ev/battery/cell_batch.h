/// \file cell_batch.h
/// Structure-of-arrays storage for the cells of one series module. The cell
/// model itself is unchanged from ev::battery::Cell — same second-order
/// Thevenin circuit, thermal node, and stress-weighted ageing, evaluated in
/// the same per-cell operation order so results stay bit-identical — but the
/// state lives in parallel vectors and step_all() integrates every cell in
/// one tight loop instead of bouncing through an object per cell.
///
/// The polarization decay factors exp(-dt/tau) depend only on dt and the RC
/// parameters, so they are cached per cell and recomputed only when the step
/// size changes; with a fixed simulation step this removes the two exp()
/// calls per cell per step that dominate the AoS model's cost.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ev/battery/cell.h"

namespace ev::battery {

/// Aggregated safety outcome of one step_all() over the whole batch.
struct BatchStatus {
  CellStatus worst;             ///< OR of all per-cell flags.
  std::size_t alarm_count = 0;  ///< Number of cells with any flag raised.
};

/// SoA cell state for a fixed set of cells. Constructed by adopting fully
/// built Cell objects (so manufacturing spread, chemistry, and initial
/// conditions are applied exactly as before); afterwards all reads and
/// updates go through per-index accessors or the batched step.
class CellBatch {
 public:
  CellBatch() = default;
  /// Adopts \p cells (at least one) into SoA storage.
  explicit CellBatch(const std::vector<Cell>& cells);

  /// Number of cells in the batch.
  [[nodiscard]] std::size_t size() const noexcept { return soc_.size(); }

  /// Advances every cell by \p dt_s. \p current_a and \p extra_heat_w give
  /// the per-cell current (positive = discharge) and externally generated
  /// heat; both spans must have size() elements.
  BatchStatus step_all(std::span<const double> current_a, std::span<const double> extra_heat_w,
                       double dt_s, double ambient_c);

  /// Per-cell reads mirroring the Cell accessors (same formulas).
  [[nodiscard]] double soc(std::size_t i) const noexcept { return soc_[i]; }
  [[nodiscard]] double capacity_ah(std::size_t i) const noexcept { return capacity_ah_[i]; }
  [[nodiscard]] double v_rc1(std::size_t i) const noexcept { return v_rc1_[i]; }
  [[nodiscard]] double v_rc2(std::size_t i) const noexcept { return v_rc2_[i]; }
  [[nodiscard]] double temperature_c(std::size_t i) const noexcept { return temp_c_[i]; }
  [[nodiscard]] double throughput_ah(std::size_t i) const noexcept { return throughput_ah_[i]; }
  [[nodiscard]] double dissipated_j(std::size_t i) const noexcept { return dissipated_j_[i]; }
  [[nodiscard]] const CellParameters& params(std::size_t i) const noexcept {
    return params_[i];
  }
  [[nodiscard]] const OcvCurve& ocv_curve(std::size_t i) const noexcept { return *curves_[i]; }
  [[nodiscard]] double open_circuit_voltage(std::size_t i) const noexcept {
    return curves_[i]->voltage(soc_[i]);
  }
  [[nodiscard]] double terminal_voltage(std::size_t i, double current_a) const noexcept {
    return open_circuit_voltage(i) - current_a * params_[i].r0_ohm - v_rc1_[i] - v_rc2_[i];
  }
  [[nodiscard]] double charge_coulomb(std::size_t i) const noexcept {
    return soc_[i] * capacity_ah_[i] * 3600.0;
  }
  [[nodiscard]] double state_of_health(std::size_t i) const noexcept {
    return capacity_ah_[i] / params_[i].capacity_ah;
  }

  /// Lossless direct charge transfer into (+) or out of (-) cell \p i.
  void inject_charge(std::size_t i, double coulombs) noexcept;

 private:
  void refresh_coefficients(double dt_s);

  // Hot per-cell state, one lane per quantity.
  std::vector<double> soc_;
  std::vector<double> capacity_ah_;
  std::vector<double> v_rc1_;
  std::vector<double> v_rc2_;
  std::vector<double> temp_c_;
  std::vector<double> throughput_ah_;
  std::vector<double> dissipated_j_;
  // Cached polarization coefficients for the current step size:
  // a = exp(-dt/tau), k = r * (1 - a) — the exact factors Cell::step builds.
  std::vector<double> a1_;
  std::vector<double> k1_;
  std::vector<double> a2_;
  std::vector<double> k2_;
  double cached_dt_s_ = -1.0;
  // Cold per-cell data: full parameter block and chemistry (rarely touched
  // inside the step loop, needed verbatim by params()/ocv_curve()).
  std::vector<CellParameters> params_;
  std::vector<std::shared_ptr<const OcvCurve>> curves_;
};

/// Read-only view of one cell inside a CellBatch, mirroring the Cell read
/// API one-for-one so existing `module.cell(i).<accessor>()` call sites keep
/// compiling unchanged. Views are cheap value types (pointer + index) and
/// must not outlive their batch.
class CellConstView {
 public:
  CellConstView(const CellBatch& batch, std::size_t index) noexcept
      : batch_(&batch), index_(index) {}

  [[nodiscard]] double soc() const noexcept { return batch_->soc(index_); }
  [[nodiscard]] double terminal_voltage(double current_a = 0.0) const noexcept {
    return batch_->terminal_voltage(index_, current_a);
  }
  [[nodiscard]] double open_circuit_voltage() const noexcept {
    return batch_->open_circuit_voltage(index_);
  }
  [[nodiscard]] double temperature_c() const noexcept {
    return batch_->temperature_c(index_);
  }
  [[nodiscard]] double capacity_ah() const noexcept { return batch_->capacity_ah(index_); }
  [[nodiscard]] double state_of_health() const noexcept {
    return batch_->state_of_health(index_);
  }
  [[nodiscard]] double charge_coulomb() const noexcept {
    return batch_->charge_coulomb(index_);
  }
  [[nodiscard]] double throughput_ah() const noexcept {
    return batch_->throughput_ah(index_);
  }
  [[nodiscard]] double dissipated_j() const noexcept { return batch_->dissipated_j(index_); }
  [[nodiscard]] double v_rc1() const noexcept { return batch_->v_rc1(index_); }
  [[nodiscard]] double v_rc2() const noexcept { return batch_->v_rc2(index_); }
  [[nodiscard]] const CellParameters& params() const noexcept {
    return batch_->params(index_);
  }
  [[nodiscard]] const OcvCurve& ocv_curve() const noexcept {
    return batch_->ocv_curve(index_);
  }

 private:
  const CellBatch* batch_;
  std::size_t index_;
};

/// Mutable view of one cell inside a CellBatch: everything CellConstView
/// offers plus the charge-injection hook used by balancing hardware and
/// fault-injection tests.
class CellView {
 public:
  CellView(CellBatch& batch, std::size_t index) noexcept : batch_(&batch), index_(index) {}

  [[nodiscard]] double soc() const noexcept { return batch_->soc(index_); }
  [[nodiscard]] double terminal_voltage(double current_a = 0.0) const noexcept {
    return batch_->terminal_voltage(index_, current_a);
  }
  [[nodiscard]] double open_circuit_voltage() const noexcept {
    return batch_->open_circuit_voltage(index_);
  }
  [[nodiscard]] double temperature_c() const noexcept {
    return batch_->temperature_c(index_);
  }
  [[nodiscard]] double capacity_ah() const noexcept { return batch_->capacity_ah(index_); }
  [[nodiscard]] double state_of_health() const noexcept {
    return batch_->state_of_health(index_);
  }
  [[nodiscard]] double charge_coulomb() const noexcept {
    return batch_->charge_coulomb(index_);
  }
  [[nodiscard]] double throughput_ah() const noexcept {
    return batch_->throughput_ah(index_);
  }
  [[nodiscard]] double dissipated_j() const noexcept { return batch_->dissipated_j(index_); }
  [[nodiscard]] double v_rc1() const noexcept { return batch_->v_rc1(index_); }
  [[nodiscard]] double v_rc2() const noexcept { return batch_->v_rc2(index_); }
  [[nodiscard]] const CellParameters& params() const noexcept {
    return batch_->params(index_);
  }
  [[nodiscard]] const OcvCurve& ocv_curve() const noexcept {
    return batch_->ocv_curve(index_);
  }

  /// Lossless direct charge transfer into (+) or out of (-) this cell.
  void inject_charge(double coulombs) noexcept { batch_->inject_charge(index_, coulombs); }

  /// A mutable view converts to a read-only one.
  operator CellConstView() const noexcept { return CellConstView{*batch_, index_}; }  // NOLINT

 private:
  CellBatch* batch_;
  std::size_t index_;
};

}  // namespace ev::battery
