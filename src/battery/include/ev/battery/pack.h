/// \file pack.h
/// The traction battery pack: series-connected modules behind a main
/// contactor, with the pack-level current sensor and power switch shown in
/// the paper's Fig. 2. Includes a builder that applies realistic
/// manufacturing spread across cells.
#pragma once

#include <cstddef>
#include <vector>

#include "ev/battery/module.h"
#include "ev/battery/sensors.h"
#include "ev/util/rng.h"

namespace ev::battery {

/// Construction parameters for a pack.
struct PackConfig {
  std::size_t module_count = 8;        ///< Series modules in the pack.
  std::size_t cells_per_module = 12;   ///< Series cells per module.
  CellParameters cell;                 ///< Base cell parameters.
  BalancingHardware balancing;         ///< Balancing hardware per module.
  double initial_soc = 0.9;            ///< Mean initial SoC.
  double soc_spread_sigma = 0.015;     ///< Std-dev of per-cell initial SoC.
  double capacity_spread_sigma = 0.01; ///< Relative std-dev of cell capacity.
  double r0_spread_sigma = 0.05;       ///< Relative std-dev of cell R0.
  bool use_lfp_chemistry = false;      ///< LFP instead of NMC OCV curve.
};

/// Aggregated pack status after a step.
struct PackStatus {
  ModuleStatus worst;          ///< Worst module status.
  bool contactor_closed = true;  ///< Main contactor state during the step.
};

/// Series pack of modules with contactor and pack current sensor. Besides
/// the per-module balancing hardware, the pack carries one module-to-module
/// transfer converter (the modular concurrent-balancing architecture of the
/// paper's ref [2]) so charge can be moved across module boundaries.
class Pack {
 public:
  /// Builds a pack per \p config, drawing manufacturing spread from \p rng.
  Pack(const PackConfig& config, util::Rng& rng);

  /// Commands the pack-level converter to move charge from \p from_module
  /// to \p to_module until changed or cleared.
  void command_module_transfer(std::size_t from_module, std::size_t to_module);
  /// Stops the pack-level transfer.
  void clear_module_transfer() noexcept { module_transfer_active_ = false; }
  /// True while a module-to-module transfer is commanded.
  [[nodiscard]] bool module_transfer_active() const noexcept {
    return module_transfer_active_;
  }

  /// Advances the pack by \p dt_s under terminal current \p current_a
  /// (positive = discharge). With the contactor open, the string current is
  /// forced to zero but balancing hardware keeps operating.
  PackStatus step(double current_a, double dt_s, double ambient_c = 25.0);

  /// Pack terminal voltage under \p current_a [V]; zero with open contactor.
  [[nodiscard]] double terminal_voltage(double current_a = 0.0) const noexcept;
  /// Sum of module open-circuit voltages [V], regardless of contactor.
  [[nodiscard]] double open_circuit_voltage() const noexcept;

  /// Main contactor control (the "power switch" of Fig. 2).
  void open_contactor() noexcept { contactor_closed_ = false; }
  void close_contactor() noexcept { contactor_closed_ = true; }
  [[nodiscard]] bool contactor_closed() const noexcept { return contactor_closed_; }

  /// Number of modules.
  [[nodiscard]] std::size_t module_count() const noexcept { return modules_.size(); }
  /// Access to module \p i.
  [[nodiscard]] const SeriesModule& module(std::size_t i) const { return modules_.at(i); }
  [[nodiscard]] SeriesModule& module(std::size_t i) { return modules_.at(i); }
  /// Total number of series cells.
  [[nodiscard]] std::size_t cell_count() const noexcept;

  /// Lowest / highest true SoC across all cells.
  [[nodiscard]] double min_soc() const noexcept;
  [[nodiscard]] double max_soc() const noexcept;
  /// Mean true SoC across all cells.
  [[nodiscard]] double mean_soc() const noexcept;

  /// Usable energy until the weakest cell empties, at nominal voltage [Wh].
  /// In a series string the *minimum* cell bounds pack capacity — the root
  /// cause of the balancing requirement discussed in the paper.
  [[nodiscard]] double usable_energy_wh() const noexcept;

  /// Energy dissipated in bleed resistors across all modules [J].
  [[nodiscard]] double total_bleed_energy_j() const noexcept;
  /// Energy lost in active-transfer converters across all modules [J].
  [[nodiscard]] double total_transfer_loss_j() const noexcept;

  /// Last current the pack-level sensor reported [A]; updated by step().
  [[nodiscard]] double sensed_current_a() const noexcept { return sensed_current_a_; }
  /// The pack current sensor (the BMS reads through this).
  [[nodiscard]] CurrentSensor& current_sensor() noexcept { return current_sensor_; }

 private:
  std::vector<SeriesModule> modules_;
  CurrentSensor current_sensor_;
  util::Rng* rng_;
  bool contactor_closed_ = true;
  double sensed_current_a_ = 0.0;
  bool module_transfer_active_ = false;
  std::size_t transfer_from_module_ = 0;
  std::size_t transfer_to_module_ = 0;
  double module_transfer_loss_j_ = 0.0;
};

}  // namespace ev::battery
