/// \file ocv_curve.h
/// Open-circuit-voltage vs state-of-charge characteristic of a Li-Ion cell.
/// The OCV curve is the core nonlinearity of the equivalent-circuit cell
/// model and the lookup the BMS observer inverts for SoC estimation.
#pragma once

#include <utility>
#include <vector>

namespace ev::battery {

/// Piecewise-linear OCV(SoC) map. Monotonically increasing in SoC, which
/// makes the inverse lookup (SoC from rested terminal voltage) well defined.
class OcvCurve {
 public:
  /// Constructs from (soc, volts) knots; soc values must be strictly
  /// increasing and span [0, 1], and voltages must be non-decreasing.
  explicit OcvCurve(std::vector<std::pair<double, double>> knots);

  /// Open-circuit voltage at \p soc (clamped into [0,1]).
  [[nodiscard]] double voltage(double soc) const noexcept;

  /// Inverse lookup: SoC whose open-circuit voltage equals \p volts
  /// (clamped into the curve's voltage range).
  [[nodiscard]] double soc(double volts) const noexcept;

  /// Lowest voltage on the curve (SoC = 0).
  [[nodiscard]] double min_voltage() const noexcept { return knots_.front().second; }
  /// Highest voltage on the curve (SoC = 1).
  [[nodiscard]] double max_voltage() const noexcept { return knots_.back().second; }

  /// Typical NMC (LiNiMnCoO2) chemistry: 3.0 V empty to 4.2 V full with the
  /// characteristic mid-range slope.
  [[nodiscard]] static OcvCurve nmc();

  /// Typical LFP (LiFePO4) chemistry: very flat 3.2-3.3 V plateau, which is
  /// what makes voltage-based SoC estimation hard on LFP packs.
  [[nodiscard]] static OcvCurve lfp();

 private:
  std::vector<std::pair<double, double>> knots_;
};

}  // namespace ev::battery
