/// \file cell.h
/// Electro-thermal Li-Ion cell model: second-order Thevenin equivalent
/// circuit (series resistance plus two RC polarization branches) around a
/// piecewise-linear OCV(SoC) source, a lumped thermal node, and a simple
/// stress-weighted capacity-fade (ageing) model.
///
/// Sign convention throughout the battery and powertrain modules:
/// **positive current discharges** the cell (current flows out of the
/// positive terminal into the load); negative current charges it.
#pragma once

#include <memory>

#include "ev/battery/ocv_curve.h"

namespace ev::battery {

/// Electrical, thermal, and safety parameters of one cell.
struct CellParameters {
  double capacity_ah = 40.0;      ///< Nominal capacity at beginning of life [Ah].
  double r0_ohm = 0.0015;         ///< Ohmic series resistance [Ohm].
  double r1_ohm = 0.0008;         ///< First polarization resistance [Ohm].
  double c1_farad = 20000.0;      ///< First polarization capacitance [F] (~16 s).
  double r2_ohm = 0.0005;         ///< Second polarization resistance [Ohm].
  double c2_farad = 120000.0;     ///< Second polarization capacitance [F] (~60 s).
  double thermal_capacity_j_per_k = 900.0;   ///< Lumped heat capacity [J/K].
  double thermal_resistance_k_per_w = 4.0;   ///< Node-to-ambient resistance [K/W].
  double min_voltage = 3.0;       ///< Undervoltage safety limit [V].
  double max_voltage = 4.2;       ///< Overvoltage safety limit [V].
  double max_temperature_c = 60.0;    ///< Overtemperature safety limit [degC].
  double runaway_temperature_c = 80.0;  ///< Thermal-runaway onset [degC].
  double max_discharge_current_a = 400.0;  ///< Discharge current limit [A].
  double max_charge_current_a = 120.0;     ///< Charge current limit [A].
  /// Capacity fade per ampere-hour of charge throughput at moderate stress,
  /// as a fraction of nominal capacity. Default ~20% fade after 3000
  /// equivalent full cycles of an 40 Ah cell.
  double fade_per_ah_throughput = 20e-3 / (3000.0 * 2 * 40.0) * 10.0;
};

/// Instantaneous cell condition flags raised by step(); the BMS safety
/// monitor consumes these.
struct CellStatus {
  bool overvoltage = false;
  bool undervoltage = false;
  bool overtemperature = false;
  bool overcurrent = false;
  bool thermal_runaway = false;
  /// True when any flag is raised.
  [[nodiscard]] bool any() const noexcept {
    return overvoltage || undervoltage || overtemperature || overcurrent || thermal_runaway;
  }
};

/// One Li-Ion cell. Continuous state is advanced by fixed-step explicit
/// integration in step(); the step sizes used across evsys (10-100 ms) are
/// far below the smallest RC time constant, keeping the explicit scheme
/// stable and accurate.
class Cell {
 public:
  /// Creates a cell with the given parameters and chemistry at \p initial_soc
  /// (clamped to [0,1]) and \p initial_temp_c.
  Cell(CellParameters params, OcvCurve curve, double initial_soc = 0.5,
       double initial_temp_c = 25.0);

  /// Advances the model by \p dt_s seconds under \p current_a (positive =
  /// discharge) with \p ambient_c ambient temperature, including \p
  /// extra_heat_w of externally generated heat (e.g. a bleed resistor mounted
  /// on the cell). Returns the safety status observed during the step.
  CellStatus step(double current_a, double dt_s, double ambient_c = 25.0,
                  double extra_heat_w = 0.0);

  /// Transfers \p coulombs of charge directly into (+) or out of (-) the
  /// cell without ohmic loss, used by the active-balancing hardware model
  /// which accounts for converter efficiency itself.
  void inject_charge(double coulombs) noexcept;

  /// True state of charge in [0,1] (simulation ground truth; the BMS must
  /// estimate it from sensors instead of reading this).
  [[nodiscard]] double soc() const noexcept { return soc_; }
  /// Terminal voltage under \p current_a load at the present state [V].
  [[nodiscard]] double terminal_voltage(double current_a = 0.0) const noexcept;
  /// Open-circuit voltage at the present SoC [V].
  [[nodiscard]] double open_circuit_voltage() const noexcept;
  /// Cell temperature [degC].
  [[nodiscard]] double temperature_c() const noexcept { return temp_c_; }
  /// Present (faded) capacity [Ah].
  [[nodiscard]] double capacity_ah() const noexcept { return capacity_ah_; }
  /// State of health: present capacity over nominal capacity, in (0,1].
  [[nodiscard]] double state_of_health() const noexcept {
    return capacity_ah_ / params_.capacity_ah;
  }
  /// Remaining charge [C].
  [[nodiscard]] double charge_coulomb() const noexcept {
    return soc_ * capacity_ah_ * 3600.0;
  }
  /// Polarization branch voltages [V] (state handed to CellBatch adoption).
  [[nodiscard]] double v_rc1() const noexcept { return v_rc1_; }
  [[nodiscard]] double v_rc2() const noexcept { return v_rc2_; }
  /// Total absolute charge throughput so far [Ah].
  [[nodiscard]] double throughput_ah() const noexcept { return throughput_ah_; }
  /// Total ohmic + polarization energy dissipated in the cell so far [J].
  [[nodiscard]] double dissipated_j() const noexcept { return dissipated_j_; }
  /// Model parameters.
  [[nodiscard]] const CellParameters& params() const noexcept { return params_; }
  /// OCV characteristic.
  [[nodiscard]] const OcvCurve& ocv_curve() const noexcept { return *curve_; }
  /// Shared handle to the OCV characteristic (lets a CellBatch keep the
  /// chemistry shared instead of copying the curve per cell).
  [[nodiscard]] std::shared_ptr<const OcvCurve> shared_curve() const noexcept {
    return curve_;
  }

 private:
  CellParameters params_;
  std::shared_ptr<const OcvCurve> curve_;  // shared across the cells of a pack
  double soc_;
  double capacity_ah_;
  double v_rc1_ = 0.0;  // polarization branch voltages [V]
  double v_rc2_ = 0.0;
  double temp_c_;
  double throughput_ah_ = 0.0;
  double dissipated_j_ = 0.0;
};

}  // namespace ev::battery
