/// \file sensors.h
/// Measurement-chain models. The BMS never sees simulation ground truth: it
/// observes cell voltages, temperatures, and the pack current through these
/// noisy, biased sensors, which is what makes SoC *estimation* (rather than
/// lookup) a real problem.
#pragma once

#include "ev/util/rng.h"

namespace ev::battery {

/// Additive-Gaussian-noise-plus-bias sensor for a scalar quantity.
class ScalarSensor {
 public:
  /// \p noise_sigma standard deviation and constant \p bias in the measured
  /// quantity's unit; optional \p quantization step (0 disables).
  explicit ScalarSensor(double noise_sigma = 0.0, double bias = 0.0,
                        double quantization = 0.0) noexcept
      : noise_sigma_(noise_sigma), bias_(bias), quantization_(quantization) {}

  /// Produces a measurement of \p true_value using randomness from \p rng.
  [[nodiscard]] double measure(double true_value, util::Rng& rng) const;

  [[nodiscard]] double noise_sigma() const noexcept { return noise_sigma_; }
  [[nodiscard]] double bias() const noexcept { return bias_; }

 private:
  double noise_sigma_;
  double bias_;
  double quantization_;
};

/// Cell voltage sensor: typical BMS front-end, ~1 mV noise, 1 mV LSB.
class VoltageSensor : public ScalarSensor {
 public:
  explicit VoltageSensor(double noise_sigma = 1e-3, double bias = 0.0) noexcept
      : ScalarSensor(noise_sigma, bias, 1e-3) {}
};

/// Pack current sensor: shunt/hall hybrid, ~0.1 A noise plus a small bias —
/// the bias is what makes pure coulomb counting drift over time.
class CurrentSensor : public ScalarSensor {
 public:
  explicit CurrentSensor(double noise_sigma = 0.1, double bias = 0.05) noexcept
      : ScalarSensor(noise_sigma, bias, 0.01) {}
};

/// Cell temperature sensor (NTC): ~0.2 K noise.
class TemperatureSensor : public ScalarSensor {
 public:
  explicit TemperatureSensor(double noise_sigma = 0.2, double bias = 0.0) noexcept
      : ScalarSensor(noise_sigma, bias, 0.1) {}
};

}  // namespace ev::battery
