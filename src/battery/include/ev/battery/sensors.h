/// \file sensors.h
/// Measurement-chain models. The BMS never sees simulation ground truth: it
/// observes cell voltages, temperatures, and the pack current through these
/// noisy, biased sensors, which is what makes SoC *estimation* (rather than
/// lookup) a real problem. Sensors also carry the injectable measurement
/// faults (stuck-at, offset drift, dropout) that feed the SafetyMonitor's
/// debounced detection path in fault-injection experiments.
#pragma once

#include <cstdint>

#include "ev/util/rng.h"

namespace ev::battery {

/// Injectable sensor failure modes.
enum class SensorFaultMode : std::uint8_t {
  kNone,
  kStuckAt,      ///< Output frozen at a fixed value (ADC latch-up, open wire
                 ///< with a pull-up).
  kOffsetDrift,  ///< Bias grows by a fixed increment every sample (thermal
                 ///< drift, reference degradation).
  kDropout,      ///< Output collapses to a fixed floor (lost connection).
};

/// One injected sensor fault. Inject via ScalarSensor::inject_fault().
struct SensorFault {
  SensorFaultMode mode = SensorFaultMode::kNone;
  double stuck_value = 0.0;       ///< kStuckAt output.
  double drift_per_sample = 0.0;  ///< kOffsetDrift bias increment per measure().
  double dropout_value = 0.0;     ///< kDropout output.
};

/// Additive-Gaussian-noise-plus-bias sensor for a scalar quantity.
class ScalarSensor {
 public:
  /// \p noise_sigma standard deviation and constant \p bias in the measured
  /// quantity's unit; optional \p quantization step (0 disables).
  explicit ScalarSensor(double noise_sigma = 0.0, double bias = 0.0,
                        double quantization = 0.0) noexcept
      : noise_sigma_(noise_sigma), bias_(bias), quantization_(quantization) {}

  /// Produces a measurement of \p true_value using randomness from \p rng.
  /// An injected fault overrides or perturbs the healthy measurement chain;
  /// stuck-at and dropout outputs bypass noise and quantization entirely
  /// (the front-end no longer sees the cell at all).
  [[nodiscard]] double measure(double true_value, util::Rng& rng);

  /// Arms \p fault; it stays in force until clear_fault().
  void inject_fault(const SensorFault& fault) noexcept {
    fault_ = fault;
    drift_accum_ = 0.0;
  }
  /// Returns the sensor to healthy operation.
  void clear_fault() noexcept { fault_ = SensorFault{}; }
  /// True while a fault is armed.
  [[nodiscard]] bool faulted() const noexcept {
    return fault_.mode != SensorFaultMode::kNone;
  }
  /// The armed fault (mode kNone when healthy).
  [[nodiscard]] const SensorFault& fault() const noexcept { return fault_; }

  [[nodiscard]] double noise_sigma() const noexcept { return noise_sigma_; }
  [[nodiscard]] double bias() const noexcept { return bias_; }

 private:
  double noise_sigma_;
  double bias_;
  double quantization_;
  SensorFault fault_;
  double drift_accum_ = 0.0;
};

/// Cell voltage sensor: typical BMS front-end, ~1 mV noise, 1 mV LSB.
class VoltageSensor : public ScalarSensor {
 public:
  explicit VoltageSensor(double noise_sigma = 1e-3, double bias = 0.0) noexcept
      : ScalarSensor(noise_sigma, bias, 1e-3) {}
};

/// Pack current sensor: shunt/hall hybrid, ~0.1 A noise plus a small bias —
/// the bias is what makes pure coulomb counting drift over time.
class CurrentSensor : public ScalarSensor {
 public:
  explicit CurrentSensor(double noise_sigma = 0.1, double bias = 0.05) noexcept
      : ScalarSensor(noise_sigma, bias, 0.01) {}
};

/// Cell temperature sensor (NTC): ~0.2 K noise.
class TemperatureSensor : public ScalarSensor {
 public:
  explicit TemperatureSensor(double noise_sigma = 0.2, double bias = 0.0) noexcept
      : ScalarSensor(noise_sigma, bias, 0.1) {}
};

}  // namespace ev::battery
