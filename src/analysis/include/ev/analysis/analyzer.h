/// \file analyzer.h
/// Whole-vehicle static analysis: schedulability and worst-case response
/// bounds for every ECU task and network frame of a composed scenario, plus
/// structural lints on the wiring — all computed from the extracted model,
/// never by simulation. This is the "verify before deploy" pass the paper's
/// software-design sections call for; experiment E19 cross-validates every
/// bound against the latencies the simulation actually observes.
///
/// Rules (stable ids):
///   errors   rta.unschedulable      response-time bound exceeds the period
///            bus.overload           offered load exceeds bus capacity
///            ecu.frame_overflow     partition budgets exceed the major frame
///            partition.overcommitted  runnable demand exceeds the budget
///            can.payload_size       CAN payload beyond the 8-byte limit
///            flexray.dynamic_overflow  frame exceeds the dynamic segment
///            lin.no_slot            send id missing from the schedule table
///            fault.unknown_target   fault plan names a nonexistent target
///   warnings pubsub.orphan_topic    topic published but never subscribed
///            pubsub.unfed_topic     topic subscribed but never published
///            health.uncovered_partition  partition without heartbeat watch
///            gw.unfed_route         gateway route no source ever feeds
///            lin.oversampled / flexray.oversampled  period beats the cycle
///                                   (state semantics silently drop updates)
///   info     rta.frame / rta.bus / rta.partition / rta.runnable /
///            rta.pubsub / gw.delay / bus.load   computed bounds, exported
///                                   for the record and for E19
#pragma once

#include "ev/analysis/diagnostics.h"
#include "ev/analysis/model.h"
#include "ev/config/scenario.h"

namespace ev::analysis {

/// Runs every check over an extracted model.
[[nodiscard]] Report analyze(const VehicleModel& model);

/// Convenience: extract_model + analyze.
[[nodiscard]] Report analyze_scenario(const config::ScenarioSpec& spec);

}  // namespace ev::analysis
