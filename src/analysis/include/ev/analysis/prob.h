/// \file prob.h
/// Probabilistic fault-aware CAN timing analysis (E24). Where the
/// deterministic pass answers "can this frame miss its deadline", this pass
/// answers "how often": given a per-bus stochastic error model derived from
/// the scenario's network-fault specs (bus.error_rate = Poisson errors/s,
/// bus.error_prob = Bernoulli per-attempt probability), it computes an
/// upper bound on every CAN frame's deadline-miss probability in the style
/// of Broster et al. (2002):
///
///   R(k)   — the worst-case response time with k error recoveries of
///            O = 31*tau_bit + max_j C_j each convolved into the busy
///            period (the fault-aware can_response_times overload);
///   k_max  — the largest k with R(k) <= period (the deadline);
///   P(miss) <= P(more than k_max errors strike the frame's level-i
///            window) — a Poisson tail, a binomial tail over the attempts
///            that fit the window, or their convolution when both channels
///            are armed.
///
/// At error rate zero the ladder stops at the deterministic fixed point,
/// k_max is never consulted, and the rendered report is byte-identical to
/// the deterministic analyzer — the E24 degeneracy contract. Experiment
/// bench_e24_prob_timing cross-validates the analytic probabilities against
/// observed miss frequencies from seeded fault-injection campaigns, the E19
/// static-vs-sim invariant lifted from bounds to distributions.
///
/// Rules added to the report (all info unless noted):
///   prob.bus_error    the armed error model of one CAN bus
///   prob.frame_miss   per-frame deadline-miss probability upper bound
///   prob.unsupported_target (error, wiring pass) an error-model fault spec
///                     targets a bus that is not CAN
#pragma once

#include <cstddef>
#include <vector>

#include "ev/analysis/diagnostics.h"
#include "ev/analysis/fitness.h"
#include "ev/analysis/model.h"
#include "ev/config/scenario.h"

namespace ev::analysis {

// --- math kernel (exposed for tests and the E24 bench) ----------------------

/// P(N = k) for N ~ Poisson(mean). Exact for mean == 0 (point mass at 0).
[[nodiscard]] double poisson_pmf(double mean, int k);

/// P(N > k) for N ~ Poisson(mean): 1 - sum of the pmf up to k, clamped to
/// [0, 1]. Monotone in mean, tail mass fully accounted.
[[nodiscard]] double poisson_tail_above(double mean, int k);

/// P(X = k) for X ~ Binomial(n, p), exact at the p in {0, 1} edges.
[[nodiscard]] double binomial_pmf(int n, double p, int k);

/// P(X + Y > k) for independent X ~ Poisson(mean) and Y ~ Binomial(n, p):
/// the convolved complementary mass, clamped to [0, 1]. Degenerates to the
/// single-channel tails when mean == 0 or n == 0 / p == 0.
[[nodiscard]] double combined_tail_above(double mean, int n, double p, int k);

// --- error-model derivation -------------------------------------------------

/// Per-bus error models from the model's fault events, indexed like
/// VehicleModel::buses: every bus.error_rate spec adds its rate (independent
/// Poisson processes superpose), every bus.error_prob spec composes its
/// probability (1 - prod(1 - p_i)). Injection times are ignored — the
/// analysis assumes the model active for the whole mission, the worst case.
/// Unknown targets are skipped here; the wiring pass reports them.
[[nodiscard]] std::vector<BusErrorModel> derive_error_models(const VehicleModel& model);

// --- the analyzer -----------------------------------------------------------

/// The probabilistic analyzer: one FitnessEvaluator with the probabilistic
/// pass armed, so the per-bus ProbOutcomes are memoized and re-evaluated
/// through the same dirty-closure machinery the synthesizer uses.
class ProbabilisticCanAnalyzer {
 public:
  explicit ProbabilisticCanAnalyzer(VehicleModel model);

  /// Full report: every deterministic diagnostic plus the prob.* rules.
  /// Byte-identical to analyze() when no error model is armed.
  [[nodiscard]] Report report();

  /// Settles (if dirty) and returns the probabilistic outcome of one bus.
  [[nodiscard]] const ProbOutcome& bus_outcome(std::size_t bus);

  /// The per-bus error models derived from the scenario fault plan.
  [[nodiscard]] const std::vector<BusErrorModel>& error_models() const noexcept {
    return evaluator_.error_models();
  }

  /// The underlying incremental evaluator (candidate moves, cross-check).
  [[nodiscard]] FitnessEvaluator& evaluator() noexcept { return evaluator_; }

 private:
  FitnessEvaluator evaluator_;
};

/// Probabilistic counterpart of analyze(): deterministic diagnostics plus
/// prob.* rules, byte-identical to analyze() when no error model is armed.
[[nodiscard]] Report analyze_probabilistic(const VehicleModel& model);

/// Convenience: extract_model + analyze_probabilistic (`evsys check --prob`).
[[nodiscard]] Report analyze_probabilistic_scenario(const config::ScenarioSpec& spec);

}  // namespace ev::analysis
