/// \file model.h
/// The analyzable task/message model of a composed vehicle, extracted from a
/// declarative scenario *without running it*. Extraction instantiates the
/// same builders the simulation uses — Figure1Network for topology, sources,
/// and gateway routes; cockpit_app_model for partitions and topics — but
/// never starts the clock, so what the analyzer sees is by construction the
/// configuration the co-simulation would execute.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ev/config/scenario.h"
#include "ev/core/app_model.h"

namespace ev::analysis {

/// Media-access protocol of a modelled bus.
enum class Protocol : std::uint8_t { kLin, kCan, kMost, kFlexRay };

/// Protocol name for diagnostics ("LIN", "CAN", "MOST", "FlexRay").
[[nodiscard]] std::string to_string(Protocol protocol);

/// One periodic frame as the analyzer sees it. Routed frames (re-injected
/// by the gateway on a destination bus) reference their origin so
/// end-to-end bounds can accumulate across hops.
struct FrameModel {
  std::size_t bus = 0;  ///< Index into VehicleModel::buses.
  std::uint32_t id = 0;
  std::size_t payload_bytes = 0;
  double period_s = 0.0;
  std::string description;
  bool routed = false;  ///< Injected by the gateway, not a local source.
  std::size_t source_frame = kNoFrame;  ///< Origin (routed frames only).
  /// Original Fig. 1 identifier — the key `arch.*` overrides use, stable
  /// under renumbering.
  std::uint32_t base_id = 0;
  /// True when arch.frame_bus may place this frame on another bus (plain
  /// periodic sources that feed no gateway route and are not MOST-native).
  bool movable = false;
  /// True when arch.frame_id may renumber this frame (its bus is CAN, where
  /// the identifier is the arbitration priority).
  bool id_mutable = false;

  static constexpr std::size_t kNoFrame = static_cast<std::size_t>(-1);
};

/// One bus with the protocol parameters its response-time bounds need.
struct BusModel {
  std::string display_name;   ///< As buses report it, e.g. "safety(CAN)".
  std::string scenario_name;  ///< Scenario-facing name, e.g. "safety_can".
  Protocol protocol = Protocol::kCan;
  double bit_rate_bps = 0.0;
  // LIN (master schedule table, state semantics).
  double lin_cycle_s = 0.0;
  double lin_slot_time_s = 0.0;
  std::vector<std::uint32_t> lin_slot_ids;
  // FlexRay (TDMA static segment + minislot dynamic segment).
  double fr_cycle_s = 0.0;
  double fr_slot_s = 0.0;
  double fr_static_segment_s = 0.0;
  double fr_minislot_s = 0.0;
  double fr_dynamic_s = 0.0;
  std::map<std::uint32_t, std::size_t> fr_static_slot;  ///< id -> slot index.
  // MOST (isochronous streams + FCFS async byte budget).
  double most_frame_period_s = 0.0;
  std::size_t most_async_budget_bytes = 0;
  std::vector<std::uint32_t> most_sync_ids;
};

/// One gateway routing rule, by bus index.
struct RouteModel {
  std::size_t from_bus = 0;
  std::uint32_t match_id = 0;
  std::size_t to_bus = 0;
  std::uint32_t translated_id = 0;
  std::size_t translated_payload = 0;  ///< 0 keeps the source size.
};

/// Everything the static checks need about one composed vehicle.
struct VehicleModel {
  std::string scenario;
  core::CockpitAppModel app;       ///< Cockpit partitions/runnables/topics.
  std::vector<BusModel> buses;     ///< Fig. 1 order: LIN, CAN, MOST, CAN, FR.
  std::vector<FrameModel> frames;  ///< Local sources first, routed appended.
  std::vector<RouteModel> routes;
  double gateway_delay_s = 0.0;
  std::size_t cell_count = 0;  ///< Pack cells (fault-target validation).
  bool health_enabled = false;
  bool security_enabled = false;
  std::vector<config::FaultEventSpec> fault_events;
};

/// Extracts the model for \p spec (which must validate()). Builds the real
/// network topology on a throwaway simulator — nothing is scheduled or run.
[[nodiscard]] VehicleModel extract_model(const config::ScenarioSpec& spec);

}  // namespace ev::analysis
