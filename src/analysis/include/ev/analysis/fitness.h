/// \file fitness.h
/// Incremental fitness core of the design-space synthesizer. The monolithic
/// analyze() pass is split into string-free numeric computations (per-bus
/// bounds, per-ECU RTA, wiring lints) whose results are memoized per entity;
/// a FitnessEvaluator holds one mutable VehicleModel mirror and, after each
/// candidate move, re-evaluates only the entities the move touched (plus
/// their gateway-routed downstream closure). Rendering those memoized
/// outcomes reproduces analyze()'s report byte-identically — the evaluator
/// IS the analyzer, analyze() is one full evaluation — so synthesis search
/// and `evsys check` can never disagree about a design.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ev/analysis/diagnostics.h"
#include "ev/analysis/model.h"
#include "ev/scheduling/response_time.h"

namespace ev::analysis {

/// Per-frame bound state across the fixed-point bus passes.
struct FrameBound {
  double e2e_s = 0.0;  ///< Send-to-delivery bound incl. upstream legs.
  bool valid = false;  ///< False when the protocol rejects the frame.

  friend bool operator==(const FrameBound&, const FrameBound&) = default;
};

/// Numeric (string-free) finding of one bus pass; rendered on demand.
enum class BusIssueKind : std::uint8_t {
  kCanPayload,         ///< error: payload exceeds the 8-byte CAN limit.
  kCanUnschedulable,   ///< error: worst case exceeds the period.
  kLinNoSlot,          ///< error: id missing from the schedule table.
  kLinOversampled,     ///< warning: period beats the schedule cycle.
  kFrDynamicOverflow,  ///< error: frame exceeds the dynamic segment.
  kFrOversampled,      ///< warning: period beats the communication cycle.
};

struct BusIssue {
  BusIssueKind kind = BusIssueKind::kCanPayload;
  std::size_t frame = 0;  ///< Index into VehicleModel::frames.
  double bound = 0.0;     ///< As reported in the rendered diagnostic.

  friend bool operator==(const BusIssue&, const BusIssue&) = default;
};

/// Memoized numeric result of one bus.
struct BusOutcome {
  double load = 0.0;            ///< The bus.load info figure.
  bool overloaded = false;      ///< bus.overload fires.
  double overload_value = 0.0;  ///< Figure of the overload check (for
                                ///< FlexRay the dynamic-segment ratio).
  std::vector<BusIssue> issues;

  friend bool operator==(const BusOutcome&, const BusOutcome&) = default;
};

/// Memoized numeric result of the cockpit ECU.
struct EcuOutcome {
  std::int64_t budget_sum = 0;
  bool frame_overflow = false;
  std::vector<scheduling::FpResponse> windows;  ///< Empty on overflow.
  std::vector<std::int64_t> partition_demand;   ///< Per partition, in order.

  friend bool operator==(const EcuOutcome&, const EcuOutcome&) = default;
};

/// Per-bus stochastic error model of the probabilistic timing pass (E24),
/// derived from the scenario's bus.error_rate / bus.error_prob fault specs
/// (prob.h::derive_error_models). Both channels may be active at once; an
/// all-zero model is "unarmed" and the pass emits nothing for the bus.
struct BusErrorModel {
  double poisson_rate_per_s = 0.0;  ///< Summed Poisson error rate [1/s].
  double per_attempt_prob = 0.0;    ///< Composed per-attempt probability.

  [[nodiscard]] bool armed() const noexcept {
    return poisson_rate_per_s > 0.0 || per_attempt_prob > 0.0;
  }
  friend bool operator==(const BusErrorModel&, const BusErrorModel&) = default;
};

/// Probabilistic deadline-miss figures of one CAN frame: the Broster-style
/// R(k) ladder collapsed to the largest tolerable error count and the
/// resulting P(response > period) upper bound (see prob.h).
struct FrameMissBound {
  std::size_t frame = 0;     ///< Index into VehicleModel::frames.
  int tolerable_errors = 0;  ///< Largest k with R(k) <= period; -1 when the
                             ///< frame is unschedulable even error-free.
  double response_at_kmax_s = 0.0;  ///< R(k_max) (R(0) when k_max < 0).
  double miss_probability = 0.0;    ///< Upper bound on P(response > period).

  friend bool operator==(const FrameMissBound&, const FrameMissBound&) = default;
};

/// Memoized probabilistic outcome of one bus. Only armed CAN buses carry
/// frame entries; every other bus renders no prob.* diagnostics at all,
/// which is what keeps the zero-error-rate report byte-identical to the
/// deterministic pass.
struct ProbOutcome {
  BusErrorModel model;
  std::vector<FrameMissBound> frames;

  friend bool operator==(const ProbOutcome&, const ProbOutcome&) = default;
};

/// The scalarized design quality the synthesizer optimizes. feasible() is
/// exactly `evsys check` exit code 0 (no errors, no warnings).
struct Fitness {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  /// Minimum timing slack [us] over every deadline-checked activity: CAN
  /// frames (period - bound, negative when unschedulable) and partition
  /// windows (major frame - response). State-semantics buses (LIN, FlexRay
  /// static, MOST) have no deadline and contribute nothing.
  double worst_slack_us = 0.0;
  /// Highest per-bus load figure (for FlexRay the worse of total load and
  /// dynamic-segment ratio).
  double peak_busload = 0.0;
  /// Deployment size: buses carrying at least one frame + partition count.
  std::size_t deployment = 0;

  [[nodiscard]] bool feasible() const { return errors == 0 && warnings == 0; }

  friend bool operator==(const Fitness&, const Fitness&) = default;
};

/// Incremental analyzer over one mutable VehicleModel. Mutations mirror
/// exactly what re-extracting a spec with the corresponding arch override
/// would produce, and mark the touched entities dirty; evaluate() then
/// recomputes only those (full fixed-point semantics preserved by dirtying
/// the routed-frame downstream closure). Copyable: workers evaluating
/// parallel candidates copy the evaluator, apply one move, and evaluate.
class FitnessEvaluator {
 public:
  explicit FitnessEvaluator(VehicleModel model);

  [[nodiscard]] const VehicleModel& model() const noexcept { return model_; }

  // --- candidate moves (mirror of the arch override knobs) -----------------
  /// Both CAN buses run at one rate (network.can_bit_rate).
  void set_can_bit_rate(double bit_rate_bps);
  /// Places frames[frame] on bus index `to_bus` (caller checks movable).
  void move_frame(std::size_t frame, std::size_t to_bus);
  /// Renumbers frames[frame] to `new_id`, keeping gateway route match /
  /// translated ids in sync (caller checks id_mutable and collisions).
  void renumber_frame(std::size_t frame, std::uint32_t new_id);
  /// Replaces the chassis static-slot map (a permutation of the same ids).
  void set_fr_slots(const std::map<std::uint32_t, std::size_t>& id_to_slot);
  /// Reorders/re-budgets the cockpit partitions; `windows` lists every
  /// partition name exactly once in the new window order.
  void set_partition_windows(
      const std::vector<std::pair<std::string, std::int64_t>>& windows);

  /// Recomputes everything dirty and returns the aggregated fitness.
  const Fitness& evaluate();

  /// Renders the full report from the memoized outcomes — byte-identical to
  /// analyze() of the current model. Implies evaluate().
  [[nodiscard]] Report report();

  /// When on, every evaluate() re-runs a from-scratch evaluation and throws
  /// std::logic_error if any memoized outcome diverges from it.
  void set_cross_check(bool on) noexcept { cross_check_ = on; }

  /// Arms the probabilistic pass: derives per-bus error models from the
  /// model's fault events and from then on keeps a memoized ProbOutcome per
  /// bus inside the same dirty-closure re-evaluation; report() appends the
  /// prob.* rules. With no armed error model nothing is emitted and the
  /// report stays byte-identical to the deterministic pass.
  void set_probabilistic(bool on);
  [[nodiscard]] bool probabilistic() const noexcept { return prob_enabled_; }
  /// Memoized probabilistic outcome of one bus as of the last evaluate().
  /// Only meaningful after set_probabilistic(true).
  [[nodiscard]] const ProbOutcome& prob_outcome(std::size_t bus) const {
    return prob_outcomes_[bus];
  }
  /// Per-bus error models the probabilistic pass evaluates against (empty
  /// unless set_probabilistic(true)).
  [[nodiscard]] const std::vector<BusErrorModel>& error_models() const noexcept {
    return error_models_;
  }

  /// Number of single-bus numeric passes executed so far (3 per dirty bus
  /// per evaluation) — the effort figure bench E23 compares against the
  /// full-recompute floor.
  [[nodiscard]] std::uint64_t bus_pass_evals() const noexcept { return bus_pass_evals_; }

  /// Frame indices on each bus, maintained across moves (readout for
  /// synthesis heuristics).
  [[nodiscard]] const std::vector<std::size_t>& frames_on_bus(std::size_t bus) const {
    return per_bus_[bus];
  }
  /// Settled per-frame bounds of the last evaluate().
  [[nodiscard]] const std::vector<FrameBound>& frame_bounds() const noexcept {
    return bounds_;
  }
  /// Memoized numeric outcome of one bus as of the last evaluate().
  [[nodiscard]] const BusOutcome& bus_outcome(std::size_t bus) const {
    return bus_outcomes_[bus];
  }
  /// Memoized ECU outcome as of the last evaluate().
  [[nodiscard]] const EcuOutcome& ecu_outcome() const noexcept { return ecu_; }

 private:
  void mark_bus_dirty(std::size_t bus);
  void recompute();
  void aggregate();
  void check_against_fresh();

  VehicleModel model_;
  std::vector<std::vector<std::size_t>> per_bus_;
  std::vector<FrameBound> bounds_;
  std::vector<BusOutcome> bus_outcomes_;
  std::vector<ProbOutcome> prob_outcomes_;
  std::vector<BusErrorModel> error_models_;
  EcuOutcome ecu_;
  std::vector<Diagnostic> wiring_;
  Fitness fitness_;
  std::vector<char> bus_dirty_;
  bool ecu_dirty_ = true;
  bool wiring_dirty_ = true;
  bool any_dirty_ = true;
  bool cross_check_ = false;
  bool prob_enabled_ = false;
  std::uint64_t bus_pass_evals_ = 0;
};

}  // namespace ev::analysis
