/// \file diagnostics.h
/// Typed findings of the whole-vehicle static analyzer. Every check emits
/// Diagnostic records — severity, a stable machine-readable rule id, the
/// subject (bus/frame/partition/topic) it concerns, human-readable text,
/// and where applicable the computed numeric bound (worst-case response
/// time, utilization, demand). A Report collects them, renders
/// deterministic JSON (same scenario ⇒ byte-identical output), and maps to
/// the `evsys check` exit code: any error ⇒ 1, warnings only ⇒ 3, clean ⇒ 0.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ev::analysis {

/// How bad a finding is.
enum class Severity : std::uint8_t {
  kInfo,     ///< A computed bound or verified property, for the record.
  kWarning,  ///< Suspicious wiring; the vehicle runs but likely not as meant.
  kError,    ///< The composed vehicle violates a hard constraint.
};

/// Severity name as it appears in JSON ("info", "warning", "error").
[[nodiscard]] std::string to_string(Severity severity);

/// One analyzer finding.
struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string rule_id;  ///< Stable id, e.g. "rta.unschedulable".
  std::string subject;  ///< What it concerns, e.g. "safety_can/0x201".
  std::string message;  ///< Human-readable explanation.
  double bound = 0.0;   ///< Rule-specific figure (response time [us],
                        ///< utilization, demand [us]; 0 when not applicable).

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// All findings for one analyzed scenario.
struct Report {
  std::string scenario;  ///< spec.name of the analyzed scenario.
  std::vector<Diagnostic> diagnostics;

  /// Appends one finding.
  void add(Severity severity, std::string rule_id, std::string subject,
           std::string message, double bound = 0.0);

  [[nodiscard]] std::size_t count(Severity severity) const noexcept;
  [[nodiscard]] bool has_errors() const noexcept;

  /// Deterministic order: errors first, then warnings, then info; ties by
  /// rule id, subject, message. Stable regardless of emission order.
  void sort();

  /// First diagnostic matching rule + subject, or nullptr. Linear scan —
  /// readout convenience for tests and the cross-validation bench.
  [[nodiscard]] const Diagnostic* find(std::string_view rule_id,
                                       std::string_view subject) const noexcept;
};

/// Renders the report as one deterministic JSON object (sorted diagnostics,
/// doubles in shortest round-trippable form, keys in fixed order).
void write_report_json(const Report& report, std::ostream& out);
[[nodiscard]] std::string report_json(const Report& report);

/// The `evsys check` process exit code for \p report: 1 when any error was
/// found, 3 when only warnings, 0 when clean (info never affects the code).
[[nodiscard]] int exit_code_for(const Report& report) noexcept;

}  // namespace ev::analysis
