#include "ev/analysis/fitness.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "ev/analysis/prob.h"
#include "passes.h"

namespace ev::analysis {
namespace {

constexpr double kSecondsToUs = 1e6;

}  // namespace

FitnessEvaluator::FitnessEvaluator(VehicleModel model) : model_(std::move(model)) {
  per_bus_.resize(model_.buses.size());
  for (std::size_t f = 0; f < model_.frames.size(); ++f)
    per_bus_[model_.frames[f].bus].push_back(f);
  bounds_.resize(model_.frames.size());
  bus_outcomes_.resize(model_.buses.size());
  bus_dirty_.assign(model_.buses.size(), 1);
}

void FitnessEvaluator::mark_bus_dirty(std::size_t bus) {
  bus_dirty_[bus] = 1;
  any_dirty_ = true;
  // Routed frames carry their source bound as release jitter: dirtying a bus
  // invalidates every bus a gateway route feeds from it, transitively.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const RouteModel& route : model_.routes)
      if (bus_dirty_[route.from_bus] && !bus_dirty_[route.to_bus]) {
        bus_dirty_[route.to_bus] = 1;
        changed = true;
      }
  }
}

void FitnessEvaluator::set_can_bit_rate(double bit_rate_bps) {
  for (std::size_t b = 0; b < model_.buses.size(); ++b)
    if (model_.buses[b].protocol == Protocol::kCan) {
      model_.buses[b].bit_rate_bps = bit_rate_bps;
      mark_bus_dirty(b);
    }
}

void FitnessEvaluator::move_frame(std::size_t frame, std::size_t to_bus) {
  FrameModel& f = model_.frames[frame];
  const std::size_t from_bus = f.bus;
  if (from_bus == to_bus) return;
  std::vector<std::size_t>& old_list = per_bus_[from_bus];
  old_list.erase(std::find(old_list.begin(), old_list.end(), frame));
  // analyze() builds per-bus lists in ascending frame order; keep that
  // invariant so the rendered report stays byte-identical.
  std::vector<std::size_t>& new_list = per_bus_[to_bus];
  new_list.insert(std::upper_bound(new_list.begin(), new_list.end(), frame), frame);
  f.bus = to_bus;
  f.id_mutable = model_.buses[to_bus].protocol == Protocol::kCan;
  mark_bus_dirty(from_bus);
  mark_bus_dirty(to_bus);
  wiring_dirty_ = true;  // gw.unfed_route keys on (bus, id) of local sources
}

void FitnessEvaluator::renumber_frame(std::size_t frame, std::uint32_t new_id) {
  FrameModel& f = model_.frames[frame];
  const std::uint32_t old_id = f.id;
  if (old_id == new_id) return;
  // Keep the gateway table consistent, exactly as re-extraction with the
  // arch.frame_id override would: a local source drags its matching route's
  // match_id along, a routed copy drags the translated_id.
  for (RouteModel& route : model_.routes) {
    if (!f.routed && route.from_bus == f.bus && route.match_id == old_id)
      route.match_id = new_id;
    if (f.routed && route.to_bus == f.bus && route.translated_id == old_id)
      route.translated_id = new_id;
  }
  f.id = new_id;
  mark_bus_dirty(f.bus);
  wiring_dirty_ = true;
}

void FitnessEvaluator::set_fr_slots(const std::map<std::uint32_t, std::size_t>& id_to_slot) {
  for (std::size_t b = 0; b < model_.buses.size(); ++b)
    if (model_.buses[b].protocol == Protocol::kFlexRay) {
      if (id_to_slot.size() != model_.buses[b].fr_static_slot.size())
        throw std::logic_error("set_fr_slots: slot map must keep every static id");
      model_.buses[b].fr_static_slot = id_to_slot;
      mark_bus_dirty(b);
    }
}

void FitnessEvaluator::set_partition_windows(
    const std::vector<std::pair<std::string, std::int64_t>>& windows) {
  std::vector<core::PartitionModel>& partitions = model_.app.partitions;
  if (windows.size() != partitions.size())
    throw std::logic_error("set_partition_windows: must list every partition");
  std::vector<core::PartitionModel> reordered;
  reordered.reserve(partitions.size());
  for (const auto& [name, budget_us] : windows) {
    const auto it = std::find_if(
        partitions.begin(), partitions.end(),
        [&name](const core::PartitionModel& p) { return p.name == name; });
    if (it == partitions.end())
      throw std::logic_error("set_partition_windows: unknown or repeated partition '" +
                             name + "'");
    core::PartitionModel p = std::move(*it);
    partitions.erase(it);
    p.budget_us = budget_us;
    reordered.push_back(std::move(p));
  }
  partitions = std::move(reordered);
  ecu_dirty_ = true;
  wiring_dirty_ = true;  // health.uncovered_partition iterates partitions
}

void FitnessEvaluator::set_probabilistic(bool on) {
  if (on == prob_enabled_) return;
  prob_enabled_ = on;
  if (!on) {
    prob_outcomes_.clear();
    error_models_.clear();
    return;
  }
  error_models_ = derive_error_models(model_);
  prob_outcomes_.assign(model_.buses.size(), ProbOutcome{});
  // Armed buses need a probabilistic outcome; the pass piggybacks on the
  // dirty-closure recompute, so dirty them (their deterministic outcomes are
  // recomputed too — idempotent, and only on this one transition).
  for (std::size_t b = 0; b < model_.buses.size(); ++b)
    if (error_models_[b].armed()) mark_bus_dirty(b);
}

const Fitness& FitnessEvaluator::evaluate() {
  if (any_dirty_ || ecu_dirty_ || wiring_dirty_) {
    recompute();
    aggregate();
    if (cross_check_) check_against_fresh();
  }
  return fitness_;
}

void FitnessEvaluator::recompute() {
  std::vector<std::size_t> dirty;
  for (std::size_t b = 0; b < bus_dirty_.size(); ++b)
    if (bus_dirty_[b]) dirty.push_back(b);
  if (!dirty.empty()) {
    // Frames on dirty buses restart from a blank bound (matches the zeroed
    // init of a full analysis); frames on clean buses keep their settled
    // bounds, which are exactly the fixed inputs the dirty passes need.
    for (const std::size_t b : dirty)
      for (const std::size_t f : per_bus_[b]) bounds_[f] = FrameBound{};
    // Same fixed-point discipline as the monolithic analyzer: three passes
    // in bus-index order settle every gateway chain in Fig. 1.
    for (int pass = 0; pass < 3; ++pass)
      for (const std::size_t b : dirty) {
        BusOutcome outcome = passes::compute_bus(model_, b, per_bus_[b], bounds_);
        ++bus_pass_evals_;
        if (pass == 2) bus_outcomes_[b] = std::move(outcome);
      }
    // The probabilistic pass reads the settled bounds, so it runs after the
    // fixed point — and only for the dirty closure: clean buses kept their
    // bounds, hence their memoized ProbOutcome is still exact.
    if (prob_enabled_)
      for (const std::size_t b : dirty)
        prob_outcomes_[b] =
            passes::compute_prob_bus(model_, b, per_bus_[b], bounds_, error_models_[b]);
    for (const std::size_t b : dirty) bus_dirty_[b] = 0;
  }
  any_dirty_ = false;
  if (ecu_dirty_) {
    ecu_ = passes::compute_ecu(model_);
    ecu_dirty_ = false;
  }
  if (wiring_dirty_) {
    wiring_ = passes::compute_wiring(model_);
    wiring_dirty_ = false;
  }
}

void FitnessEvaluator::aggregate() {
  Fitness fit;
  double worst_slack_us = std::numeric_limits<double>::infinity();
  bool any_slack = false;
  const auto slack = [&worst_slack_us, &any_slack](double value) {
    worst_slack_us = std::min(worst_slack_us, value);
    any_slack = true;
  };

  // --- ECU -------------------------------------------------------------------
  const std::int64_t major = model_.app.major_frame_us;
  if (ecu_.frame_overflow) {
    ++fit.errors;
    slack(static_cast<double>(major - ecu_.budget_sum));
  }
  for (const scheduling::FpResponse& response : ecu_.windows) {
    if (!response.schedulable) ++fit.errors;
    slack(static_cast<double>(major - response.response_us));
  }
  for (std::size_t i = 0; i < ecu_.partition_demand.size(); ++i)
    if (ecu_.partition_demand[i] > model_.app.partitions[i].budget_us) ++fit.errors;

  // --- buses -----------------------------------------------------------------
  for (std::size_t b = 0; b < model_.buses.size(); ++b) {
    const BusOutcome& outcome = bus_outcomes_[b];
    if (outcome.overloaded) ++fit.errors;
    fit.peak_busload =
        std::max(fit.peak_busload, std::max(outcome.load, outcome.overload_value));
    for (const BusIssue& issue : outcome.issues) {
      switch (issue.kind) {
        case BusIssueKind::kCanPayload:
        case BusIssueKind::kLinNoSlot:
        case BusIssueKind::kFrDynamicOverflow:
          ++fit.errors;
          break;
        case BusIssueKind::kCanUnschedulable:
          ++fit.errors;
          slack(model_.frames[issue.frame].period_s * kSecondsToUs - issue.bound);
          break;
        case BusIssueKind::kLinOversampled:
        case BusIssueKind::kFrOversampled:
          ++fit.warnings;
          break;
      }
    }
    if (model_.buses[b].protocol == Protocol::kCan)
      for (const std::size_t f : per_bus_[b])
        if (bounds_[f].valid)
          slack((model_.frames[f].period_s - bounds_[f].e2e_s) * kSecondsToUs);
    if (!per_bus_[b].empty()) ++fit.deployment;
  }
  fit.deployment += model_.app.partitions.size();

  // --- wiring ----------------------------------------------------------------
  for (const Diagnostic& diagnostic : wiring_) {
    if (diagnostic.severity == Severity::kError) ++fit.errors;
    if (diagnostic.severity == Severity::kWarning) ++fit.warnings;
  }

  fit.worst_slack_us = any_slack ? worst_slack_us : 0.0;
  fitness_ = fit;
}

Report FitnessEvaluator::report() {
  evaluate();
  Report report;
  report.scenario = model_.scenario;
  passes::render_ecu(model_, ecu_, report);
  for (std::size_t b = 0; b < model_.buses.size(); ++b)
    passes::render_bus(model_, b, bus_outcomes_[b], report);
  passes::render_frame_bounds(model_, per_bus_, bounds_, report);
  if (prob_enabled_)
    for (std::size_t b = 0; b < model_.buses.size(); ++b)
      passes::render_prob(model_, b, prob_outcomes_[b], report);
  report.diagnostics.insert(report.diagnostics.end(), wiring_.begin(), wiring_.end());
  report.sort();
  return report;
}

void FitnessEvaluator::check_against_fresh() {
  FitnessEvaluator fresh(model_);
  fresh.set_probabilistic(prob_enabled_);
  fresh.recompute();
  fresh.aggregate();
  if (fresh.per_bus_ != per_bus_)
    throw std::logic_error("fitness cross-check: per-bus frame lists diverged");
  if (fresh.bounds_ != bounds_)
    throw std::logic_error("fitness cross-check: frame bounds diverged");
  if (fresh.bus_outcomes_ != bus_outcomes_)
    throw std::logic_error("fitness cross-check: bus outcomes diverged");
  if (!(fresh.ecu_ == ecu_))
    throw std::logic_error("fitness cross-check: ECU outcome diverged");
  if (fresh.wiring_ != wiring_)
    throw std::logic_error("fitness cross-check: wiring diagnostics diverged");
  if (fresh.error_models_ != error_models_)
    throw std::logic_error("fitness cross-check: bus error models diverged");
  if (fresh.prob_outcomes_ != prob_outcomes_)
    throw std::logic_error("fitness cross-check: probabilistic outcomes diverged");
  if (!(fresh.fitness_ == fitness_))
    throw std::logic_error("fitness cross-check: aggregated fitness diverged");
}

}  // namespace ev::analysis
