#include "ev/analysis/diagnostics.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <tuple>

#include "ev/config/scenario.h"

namespace ev::analysis {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "info";
}

void Report::add(Severity severity, std::string rule_id, std::string subject,
                 std::string message, double bound) {
  diagnostics.push_back(Diagnostic{severity, std::move(rule_id), std::move(subject),
                                   std::move(message), bound});
}

std::size_t Report::count(Severity severity) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == severity) ++n;
  return n;
}

bool Report::has_errors() const noexcept { return count(Severity::kError) > 0; }

void Report::sort() {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              const auto ka = static_cast<std::uint8_t>(a.severity);
              const auto kb = static_cast<std::uint8_t>(b.severity);
              return std::tie(kb, a.rule_id, a.subject, a.message) <
                     std::tie(ka, b.rule_id, b.subject, b.message);
            });
}

const Diagnostic* Report::find(std::string_view rule_id,
                               std::string_view subject) const noexcept {
  for (const Diagnostic& d : diagnostics)
    if (d.rule_id == rule_id && d.subject == subject) return &d;
  return nullptr;
}

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void write_report_json(const Report& report, std::ostream& out) {
  Report sorted = report;
  sorted.sort();
  out << "{\n";
  out << "  \"scenario\": \"" << escape(sorted.scenario) << "\",\n";
  out << "  \"summary\": {\"errors\": " << sorted.count(Severity::kError)
      << ", \"warnings\": " << sorted.count(Severity::kWarning)
      << ", \"info\": " << sorted.count(Severity::kInfo) << "},\n";
  out << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < sorted.diagnostics.size(); ++i) {
    const Diagnostic& d = sorted.diagnostics[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"severity\": \"" << to_string(d.severity) << "\", \"rule\": \""
        << escape(d.rule_id) << "\", \"subject\": \"" << escape(d.subject)
        << "\", \"message\": \"" << escape(d.message) << "\", \"bound\": "
        << config::format_double(d.bound) << "}";
  }
  out << (sorted.diagnostics.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

std::string report_json(const Report& report) {
  std::ostringstream out;
  write_report_json(report, out);
  return out.str();
}

int exit_code_for(const Report& report) noexcept {
  if (report.has_errors()) return 1;
  if (report.count(Severity::kWarning) > 0) return 3;
  return 0;
}

}  // namespace ev::analysis
