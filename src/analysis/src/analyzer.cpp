#include "ev/analysis/analyzer.h"

#include "ev/analysis/fitness.h"

namespace ev::analysis {

Report analyze(const VehicleModel& model) {
  // One full evaluation of the incremental fitness core: the constructor
  // marks everything dirty, report() settles and renders it. Keeping this a
  // single code path is what guarantees `evsys check` and the synthesizer
  // can never disagree about a design.
  FitnessEvaluator evaluator(model);
  return evaluator.report();
}

Report analyze_scenario(const config::ScenarioSpec& spec) {
  return analyze(extract_model(spec));
}

}  // namespace ev::analysis
