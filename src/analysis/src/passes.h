/// \file passes.h
/// Internal seam between the numeric analysis passes and their diagnostic
/// rendering. compute_* functions are string-free (what synthesis hammers
/// thousands of times per run); render_* functions reconstruct the exact
/// diagnostics the monolithic analyzer used to emit from the memoized
/// numeric outcomes. FitnessEvaluator and analyze() are both built from
/// these, so their reports agree byte for byte.
#pragma once

#include <cstddef>
#include <vector>

#include "ev/analysis/diagnostics.h"
#include "ev/analysis/fitness.h"
#include "ev/analysis/model.h"

namespace ev::analysis::passes {

/// One numeric pass over one bus: refreshes `bounds` for the frames on it
/// and returns the load/issue outcome. Reads other frames' bounds for
/// routed release jitter; call in bus-index order until the fixed point
/// settles (three passes cover every Fig. 1 gateway chain).
[[nodiscard]] BusOutcome compute_bus(const VehicleModel& model, std::size_t bus,
                                     const std::vector<std::size_t>& on_bus,
                                     std::vector<FrameBound>& bounds);

/// Probabilistic pass over one CAN bus (E24): walks the Broster R(k) ladder
/// for every frame on the bus and turns the per-frame tolerable-error count
/// into a deadline-miss probability under `error_model`. Reads the settled
/// bounds for routed release jitter — call only after the fixed point of
/// compute_bus passes. Unarmed models and non-CAN buses yield an outcome
/// with no frame entries.
[[nodiscard]] ProbOutcome compute_prob_bus(const VehicleModel& model, std::size_t bus,
                                           const std::vector<std::size_t>& on_bus,
                                           const std::vector<FrameBound>& bounds,
                                           const BusErrorModel& error_model);

/// Numeric ECU pass: budgets, window RTA, per-partition demand.
[[nodiscard]] EcuOutcome compute_ecu(const VehicleModel& model);

/// Wiring lints (already rendered — they are pure structure checks with no
/// hot-path numeric core).
[[nodiscard]] std::vector<Diagnostic> compute_wiring(const VehicleModel& model);

/// Renders the bus.load / bus.overload / per-frame issue diagnostics of one
/// bus outcome.
void render_bus(const VehicleModel& model, std::size_t bus, const BusOutcome& outcome,
                Report& report);

/// Renders rta.frame for every valid bound plus the per-bus rta.bus roll-up
/// and the gw.delay record.
void render_frame_bounds(const VehicleModel& model,
                         const std::vector<std::vector<std::size_t>>& per_bus,
                         const std::vector<FrameBound>& bounds, Report& report);

/// Renders ecu.frame_overflow / rta.partition / partition.overcommitted /
/// rta.runnable / rta.pubsub from the ECU outcome.
void render_ecu(const VehicleModel& model, const EcuOutcome& outcome, Report& report);

/// Renders prob.bus_error + per-frame prob.frame_miss of one probabilistic
/// outcome. Emits nothing for unarmed models — the zero-error-rate report
/// stays byte-identical to the deterministic pass.
void render_prob(const VehicleModel& model, std::size_t bus, const ProbOutcome& outcome,
                 Report& report);

}  // namespace ev::analysis::passes
