#include "passes.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>

#include "ev/analysis/prob.h"
#include "ev/config/scenario.h"
#include "ev/network/can.h"
#include "ev/network/flexray.h"
#include "ev/network/lin.h"
#include "ev/util/math.h"

namespace ev::analysis::passes {
namespace {

constexpr double kSecondsToUs = 1e6;

std::string hex_id(std::uint32_t id) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%03x", id);
  return buf;
}

std::string frame_subject(const VehicleModel& model, const FrameModel& frame) {
  return model.buses[frame.bus].scenario_name + "/" + hex_id(frame.id);
}

double jitter_of(const VehicleModel& model, const FrameModel& frame,
                 const std::vector<FrameBound>& bounds) {
  if (!frame.routed) return 0.0;
  return bounds[frame.source_frame].e2e_s + model.gateway_delay_s;
}

// --------------------------------------------------------------- per bus ----

BusOutcome compute_can(const VehicleModel& model, std::size_t bus_idx,
                       const std::vector<std::size_t>& on_bus,
                       std::vector<FrameBound>& bounds) {
  const BusModel& bus = model.buses[bus_idx];
  BusOutcome out;
  std::vector<network::CanMessageSpec> specs;
  std::map<std::uint32_t, std::size_t> by_id;
  for (const std::size_t f : on_bus) {
    const FrameModel& frame = model.frames[f];
    if (frame.payload_bytes > 8) {
      out.issues.push_back({BusIssueKind::kCanPayload, f,
                            static_cast<double>(frame.payload_bytes)});
      continue;
    }
    network::CanMessageSpec spec;
    spec.id = frame.id;
    spec.payload_bytes = frame.payload_bytes;
    spec.period_s = frame.period_s;
    spec.jitter_s = jitter_of(model, frame, bounds);
    out.load += static_cast<double>(network::CanBus::frame_bits(frame.payload_bytes)) /
                bus.bit_rate_bps / frame.period_s;
    by_id.emplace(frame.id, f);
    specs.push_back(spec);
  }
  out.overload_value = out.load;
  out.overloaded = out.load > 1.0;
  for (const network::CanResponseTime& response :
       network::can_response_times(specs, bus.bit_rate_bps)) {
    const auto it = by_id.find(response.id);
    if (it == by_id.end()) continue;
    // The CAN bound already includes the release jitter, i.e. the upstream
    // leg for routed frames: it is the end-to-end figure directly.
    bounds[it->second].e2e_s = response.worst_case_s;
    bounds[it->second].valid = response.schedulable;
    if (!response.schedulable)
      out.issues.push_back({BusIssueKind::kCanUnschedulable, it->second,
                            response.worst_case_s * kSecondsToUs});
  }
  return out;
}

BusOutcome compute_lin(const VehicleModel& model, std::size_t bus_idx,
                       const std::vector<std::size_t>& on_bus,
                       std::vector<FrameBound>& bounds) {
  const BusModel& bus = model.buses[bus_idx];
  BusOutcome out;
  for (const std::size_t f : on_bus) {
    const FrameModel& frame = model.frames[f];
    const bool has_slot =
        std::find(bus.lin_slot_ids.begin(), bus.lin_slot_ids.end(), frame.id) !=
        bus.lin_slot_ids.end();
    if (!has_slot) {
      out.issues.push_back({BusIssueKind::kLinNoSlot, f, 0.0});
      continue;
    }
    // State semantics: worst case waits one full table cycle for the slot,
    // then the slot time covers the transmission.
    bounds[f].e2e_s =
        jitter_of(model, frame, bounds) + bus.lin_cycle_s + bus.lin_slot_time_s;
    bounds[f].valid = true;
    const double period_eff = std::max(frame.period_s, bus.lin_cycle_s);
    out.load += static_cast<double>(network::LinBus::frame_bits(frame.payload_bytes)) /
                bus.bit_rate_bps / period_eff;
    if (frame.period_s < bus.lin_cycle_s)
      out.issues.push_back(
          {BusIssueKind::kLinOversampled, f, bus.lin_cycle_s * kSecondsToUs});
  }
  out.overload_value = out.load;
  return out;
}

BusOutcome compute_flexray(const VehicleModel& model, std::size_t bus_idx,
                           const std::vector<std::size_t>& on_bus,
                           std::vector<FrameBound>& bounds) {
  const BusModel& bus = model.buses[bus_idx];
  BusOutcome out;

  // Dynamic-segment bookkeeping shared by every dynamic frame on the bus.
  struct Dynamic {
    std::size_t frame = 0;
    double occupied_s = 0.0;
    std::int64_t per_cycle = 1;
  };
  std::vector<Dynamic> dynamics;
  for (const std::size_t f : on_bus) {
    const FrameModel& frame = model.frames[f];
    if (bus.fr_static_slot.count(frame.id) > 0) {
      const double tx_s =
          static_cast<double>(network::FlexRayBus::frame_bits(frame.payload_bytes)) /
          bus.bit_rate_bps;
      out.load += tx_s / std::max(frame.period_s, bus.fr_cycle_s);
      continue;
    }
    const double tx_s =
        static_cast<double>(network::FlexRayBus::frame_bits(frame.payload_bytes)) /
        bus.bit_rate_bps;
    if (tx_s > bus.fr_dynamic_s) {
      out.issues.push_back(
          {BusIssueKind::kFrDynamicOverflow, f, tx_s * kSecondsToUs});
      continue;
    }
    Dynamic d;
    d.frame = f;
    d.occupied_s = std::ceil(tx_s / bus.fr_minislot_s) * bus.fr_minislot_s;
    d.per_cycle = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(bus.fr_cycle_s / frame.period_s)));
    out.load += tx_s / frame.period_s;
    dynamics.push_back(d);
  }

  double dynamic_demand_s = 0.0;  // minislot time claimed per cycle
  for (const Dynamic& d : dynamics)
    dynamic_demand_s += d.occupied_s * static_cast<double>(d.per_cycle);
  const double extra_cycles =
      dynamic_demand_s > bus.fr_dynamic_s
          ? std::ceil(dynamic_demand_s / bus.fr_dynamic_s) - 1.0
          : 0.0;
  out.overload_value =
      bus.fr_dynamic_s > 0.0 ? dynamic_demand_s / bus.fr_dynamic_s : 0.0;
  out.overloaded = out.overload_value > 1.0;

  for (const std::size_t f : on_bus) {
    const FrameModel& frame = model.frames[f];
    const auto slot = bus.fr_static_slot.find(frame.id);
    if (slot != bus.fr_static_slot.end()) {
      // State-buffered TDMA: worst case misses the current cycle, then the
      // frame leaves in its fixed slot of the next one.
      bounds[f].e2e_s =
          jitter_of(model, frame, bounds) + bus.fr_cycle_s +
          static_cast<double>(slot->second + 1) * bus.fr_slot_s;
      bounds[f].valid = true;
      if (frame.period_s < bus.fr_cycle_s)
        out.issues.push_back(
            {BusIssueKind::kFrOversampled, f, bus.fr_cycle_s * kSecondsToUs});
      continue;
    }
    const auto dyn = std::find_if(dynamics.begin(), dynamics.end(),
                                  [f](const Dynamic& d) { return d.frame == f; });
    if (dyn == dynamics.end()) continue;  // rejected above
    const double tx_s =
        static_cast<double>(network::FlexRayBus::frame_bits(frame.payload_bytes)) /
        bus.bit_rate_bps;
    // Minislot arbitration serves ascending ids: lower ids (and earlier
    // instances of this id) claim their minislots first.
    double interference_s = dyn->occupied_s * static_cast<double>(dyn->per_cycle - 1);
    for (const Dynamic& other : dynamics)
      if (model.frames[other.frame].id < frame.id)
        interference_s += other.occupied_s * static_cast<double>(other.per_cycle);
    bounds[f].e2e_s = jitter_of(model, frame, bounds) +
                      (1.0 + extra_cycles) * bus.fr_cycle_s +
                      bus.fr_static_segment_s + interference_s + tx_s;
    bounds[f].valid = true;
  }
  return out;
}

BusOutcome compute_most(const VehicleModel& model, std::size_t bus_idx,
                        const std::vector<std::size_t>& on_bus,
                        std::vector<FrameBound>& bounds) {
  const BusModel& bus = model.buses[bus_idx];
  BusOutcome out;
  const auto is_sync = [&bus](std::uint32_t id) {
    return std::find(bus.most_sync_ids.begin(), bus.most_sync_ids.end(), id) !=
           bus.most_sync_ids.end();
  };
  // FCFS asynchronous region: at most one outstanding frame per id queues
  // ahead, so the backlog a new frame can find is the sum of all async
  // payloads on the bus.
  double async_backlog_bytes = 0.0;
  double async_demand = 0.0;  // bytes/s
  for (const std::size_t f : on_bus) {
    const FrameModel& frame = model.frames[f];
    if (is_sync(frame.id)) continue;
    async_backlog_bytes += static_cast<double>(frame.payload_bytes);
    async_demand += static_cast<double>(frame.payload_bytes) / frame.period_s;
  }
  const double budget_rate =
      static_cast<double>(bus.most_async_budget_bytes) / bus.most_frame_period_s;
  out.load = budget_rate > 0.0 ? async_demand / budget_rate : 0.0;
  out.overload_value = out.load;
  out.overloaded = out.load > 1.0;
  for (const std::size_t f : on_bus) {
    const FrameModel& frame = model.frames[f];
    if (is_sync(frame.id)) {
      // Isochronous pipeline: delivery exactly one frame period after send.
      bounds[f].e2e_s = jitter_of(model, frame, bounds) + bus.most_frame_period_s;
      bounds[f].valid = true;
      continue;
    }
    const double frames_needed =
        bus.most_async_budget_bytes > 0
            ? std::ceil(async_backlog_bytes /
                        static_cast<double>(bus.most_async_budget_bytes))
            : 1.0;
    // +1 frame period aligns to the ring clock; the last fragment lands one
    // period after the frame that carried it.
    bounds[f].e2e_s = jitter_of(model, frame, bounds) +
                      (frames_needed + 1.0) * bus.most_frame_period_s;
    bounds[f].valid = true;
  }
  return out;
}

}  // namespace

ProbOutcome compute_prob_bus(const VehicleModel& model, std::size_t bus_idx,
                             const std::vector<std::size_t>& on_bus,
                             const std::vector<FrameBound>& bounds,
                             const BusErrorModel& error_model) {
  ProbOutcome out;
  out.model = error_model;
  const BusModel& bus = model.buses[bus_idx];
  if (!error_model.armed() || bus.protocol != Protocol::kCan) return out;

  const double tau_bit = 1.0 / bus.bit_rate_bps;
  // Same message set, order, and jitter as compute_can — the k = 0 rung of
  // the ladder is the deterministic analysis, bit for bit.
  std::vector<network::CanMessageSpec> specs;
  std::vector<std::size_t> spec_frame;
  std::map<std::uint32_t, std::size_t> by_id;  // wire id -> spec index
  double max_tx_s = 0.0;
  double min_tx_s = std::numeric_limits<double>::infinity();
  for (const std::size_t f : on_bus) {
    const FrameModel& frame = model.frames[f];
    if (frame.payload_bytes > 8) continue;  // carries can.payload_size already
    network::CanMessageSpec spec;
    spec.id = frame.id;
    spec.payload_bytes = frame.payload_bytes;
    spec.period_s = frame.period_s;
    spec.jitter_s = jitter_of(model, frame, bounds);
    const double tx_s =
        static_cast<double>(network::CanBus::frame_bits(frame.payload_bytes)) * tau_bit;
    max_tx_s = std::max(max_tx_s, tx_s);
    min_tx_s = std::min(min_tx_s, tx_s);
    by_id.emplace(spec.id, specs.size());
    spec_frame.push_back(f);
    specs.push_back(spec);
  }
  if (specs.empty()) return out;

  // Per-error recovery overhead: the 31-bit error flag plus the
  // retransmission of the longest frame on the bus (Broster's O).
  const double overhead_s =
      static_cast<double>(network::CanBus::kErrorRecoveryBits) * tau_bit + max_tx_s;

  // Walk the R(k) ladder upward; R(k) is monotone in k, so each frame's
  // k_max is the last rung it survives. The cap bounds the walk for frames
  // with huge slack — P(N > cap) still upper-bounds their miss probability.
  constexpr int kMaxTolerable = 64;
  std::vector<int> kmax(specs.size(), -1);
  std::vector<double> r_kmax(specs.size(), 0.0);
  std::vector<double> r_zero(specs.size(), 0.0);
  for (int k = 0; k <= kMaxTolerable; ++k) {
    bool any_alive = false;
    for (const network::CanResponseTime& response :
         network::can_response_times(specs, bus.bit_rate_bps, overhead_s, k)) {
      const std::size_t s = by_id.find(response.id)->second;
      if (k == 0) r_zero[s] = response.worst_case_s;
      if (response.schedulable && kmax[s] == k - 1) {
        kmax[s] = k;
        r_kmax[s] = response.worst_case_s;
        any_alive = true;
      }
    }
    if (!any_alive) break;
  }

  for (std::size_t s = 0; s < specs.size(); ++s) {
    FrameMissBound fmb;
    fmb.frame = spec_frame[s];
    fmb.tolerable_errors = kmax[s];
    if (kmax[s] < 0) {
      // Already unschedulable with zero errors: the deterministic pass
      // reports rta.unschedulable, the miss probability is certain.
      fmb.response_at_kmax_s = r_zero[s];
      fmb.miss_probability = 1.0;
    } else {
      fmb.response_at_kmax_s = r_kmax[s];
      // Errors able to disturb one instance fall inside its level-i window:
      // release jitter + deadline, padded by one recovery to cover a
      // blocking frame already on the wire. Over-covering keeps the bound.
      const double window_s = specs[s].jitter_s + specs[s].period_s + overhead_s;
      const double mean = error_model.poisson_rate_per_s * window_s;
      int attempts = 0;
      if (error_model.per_attempt_prob > 0.0)
        // Attempts are serialized on the bus and each occupies at least the
        // shortest frame, so this many fit the window (plus a straddler).
        attempts = static_cast<int>(window_s / min_tx_s) + 1;
      fmb.miss_probability =
          combined_tail_above(mean, attempts, error_model.per_attempt_prob, kmax[s]);
    }
    out.frames.push_back(fmb);
  }
  return out;
}

BusOutcome compute_bus(const VehicleModel& model, std::size_t bus,
                       const std::vector<std::size_t>& on_bus,
                       std::vector<FrameBound>& bounds) {
  switch (model.buses[bus].protocol) {
    case Protocol::kLin: return compute_lin(model, bus, on_bus, bounds);
    case Protocol::kCan: return compute_can(model, bus, on_bus, bounds);
    case Protocol::kMost: return compute_most(model, bus, on_bus, bounds);
    case Protocol::kFlexRay: return compute_flexray(model, bus, on_bus, bounds);
  }
  return {};
}

EcuOutcome compute_ecu(const VehicleModel& model) {
  const core::CockpitAppModel& app = model.app;
  EcuOutcome out;
  for (const core::PartitionModel& partition : app.partitions)
    out.budget_sum += partition.budget_us;
  out.frame_overflow = out.budget_sum > app.major_frame_us;
  if (!out.frame_overflow) {
    // The dispatcher runs windows back-to-back in creation order: model each
    // window as a fixed-priority task (priority = position) with the major
    // frame as its period. Responses bound the window-completion offset.
    std::vector<scheduling::FpTask> tasks;
    for (std::size_t i = 0; i < app.partitions.size(); ++i) {
      scheduling::FpTask task;
      task.name = app.partitions[i].name;
      task.priority = static_cast<int>(i);
      task.period_us = app.major_frame_us;
      task.wcet_us = app.partitions[i].budget_us;
      tasks.push_back(std::move(task));
    }
    out.windows = scheduling::fp_response_times(tasks);
  }
  for (const core::PartitionModel& partition : app.partitions) {
    std::int64_t demand = 0;
    for (const core::RunnableModel& runnable : partition.runnables) {
      const std::int64_t activations =
          runnable.period_us > 0
              ? std::max<std::int64_t>(
                    1, util::ceil_div(app.major_frame_us, runnable.period_us))
              : 1;
      demand += runnable.wcet_us * activations;
    }
    out.partition_demand.push_back(demand);
  }
  return out;
}

std::vector<Diagnostic> compute_wiring(const VehicleModel& model) {
  Report report;
  const std::string& ecu = model.app.ecu_name;
  for (const core::TopicModel& topic : model.app.topics) {
    if (topic.subscribers.empty())
      report.add(Severity::kWarning, "pubsub.orphan_topic", ecu + "/" + topic.name,
                 "topic is published but nobody subscribes — dead traffic");
    if (topic.publishers.empty())
      report.add(Severity::kWarning, "pubsub.unfed_topic", ecu + "/" + topic.name,
                 "topic has subscribers but no publisher — they starve");
  }

  if (!model.health_enabled)
    for (const core::PartitionModel& partition : model.app.partitions)
      report.add(Severity::kWarning, "health.uncovered_partition",
                 ecu + "/" + partition.name,
                 "no heartbeat coverage: the health subsystem is disabled, a "
                 "hang or crash goes undetected");

  for (std::size_t i = 0; i < model.fault_events.size(); ++i) {
    const config::FaultEventSpec& event = model.fault_events[i];
    const std::string subject = "fault[" + std::to_string(i) + "]";
    switch (event.kind) {
      case config::FaultKind::kBusDrop:
      case config::FaultKind::kBusCorrupt:
      case config::FaultKind::kBusOff:
      case config::FaultKind::kBusBabble: {
        const bool known = std::any_of(
            model.buses.begin(), model.buses.end(),
            [&event](const BusModel& bus) { return bus.scenario_name == event.target; });
        if (!known)
          report.add(Severity::kError, "fault.unknown_target", subject,
                     config::to_string(event.kind) + " targets unknown bus '" +
                         event.target + "'");
        break;
      }
      case config::FaultKind::kPartitionCrash:
      case config::FaultKind::kPartitionHang: {
        const bool known =
            std::any_of(model.app.partitions.begin(), model.app.partitions.end(),
                        [&event](const core::PartitionModel& partition) {
                          return partition.name == event.target;
                        });
        if (!known)
          report.add(Severity::kError, "fault.unknown_target", subject,
                     config::to_string(event.kind) +
                         " targets unknown cockpit partition '" + event.target +
                         "'");
        break;
      }
      case config::FaultKind::kSensorStuck: {
        char* end = nullptr;
        const unsigned long long cell =
            std::strtoull(event.target.c_str(), &end, 10);
        if (end == event.target.c_str() || *end != '\0' ||
            cell >= model.cell_count)
          report.add(Severity::kError, "fault.unknown_target", subject,
                     "sensor fault targets cell '" + event.target +
                         "' outside the pack (" +
                         std::to_string(model.cell_count) + " cells)",
                     static_cast<double>(model.cell_count));
        break;
      }
      case config::FaultKind::kBusErrorRate:
      case config::FaultKind::kBusErrorProb: {
        const auto bus_it = std::find_if(
            model.buses.begin(), model.buses.end(),
            [&event](const BusModel& bus) { return bus.scenario_name == event.target; });
        if (bus_it == model.buses.end())
          report.add(Severity::kError, "fault.unknown_target", subject,
                     config::to_string(event.kind) + " targets unknown bus '" +
                         event.target + "'");
        else if (bus_it->protocol != Protocol::kCan)
          report.add(Severity::kError, "prob.unsupported_target", subject,
                     config::to_string(event.kind) + " targets " +
                         to_string(bus_it->protocol) + " bus '" + event.target +
                         "' — the stochastic error model covers CAN only");
        break;
      }
    }
  }

  for (const RouteModel& route : model.routes) {
    const bool fed = std::any_of(
        model.frames.begin(), model.frames.end(), [&route](const FrameModel& frame) {
          return !frame.routed && frame.bus == route.from_bus &&
                 frame.id == route.match_id;
        });
    if (!fed)
      report.add(Severity::kWarning, "gw.unfed_route",
                 "central-gateway/" + hex_id(route.match_id),
                 "gateway route from " + model.buses[route.from_bus].scenario_name +
                     " matches an id no source ever publishes");
  }
  return std::move(report.diagnostics);
}

void render_bus(const VehicleModel& model, std::size_t bus_idx,
                const BusOutcome& outcome, Report& report) {
  const BusModel& bus = model.buses[bus_idx];
  if (bus.protocol == Protocol::kMost) {
    report.add(Severity::kInfo, "bus.load", bus.scenario_name,
               "offered load " + config::format_double(outcome.load) +
                   " of the asynchronous-region capacity",
               outcome.load);
    if (outcome.overloaded)
      report.add(Severity::kError, "bus.overload", bus.scenario_name,
                 "asynchronous demand exceeds the per-frame byte budget — "
                 "the packet queue diverges",
                 outcome.overload_value);
  } else {
    report.add(Severity::kInfo, "bus.load", bus.scenario_name,
               "offered load " + config::format_double(outcome.load) +
                   " of the bus capacity",
               outcome.load);
    if (outcome.overloaded) {
      if (bus.protocol == Protocol::kFlexRay)
        report.add(Severity::kError, "bus.overload", bus.scenario_name,
                   "dynamic-segment demand exceeds the minislot capacity — "
                   "event frames defer indefinitely",
                   outcome.overload_value);
      else
        report.add(Severity::kError, "bus.overload", bus.scenario_name,
                   "offered load exceeds the bus capacity — queues diverge",
                   outcome.overload_value);
    }
  }
  for (const BusIssue& issue : outcome.issues) {
    const FrameModel& frame = model.frames[issue.frame];
    switch (issue.kind) {
      case BusIssueKind::kCanPayload:
        report.add(Severity::kError, "can.payload_size", frame_subject(model, frame),
                   frame.description + ": " + std::to_string(frame.payload_bytes) +
                       "-byte payload exceeds the 8-byte CAN limit",
                   issue.bound);
        break;
      case BusIssueKind::kCanUnschedulable:
        report.add(Severity::kError, "rta.unschedulable", frame_subject(model, frame),
                   frame.description +
                       ": worst-case response exceeds the period (" +
                       config::format_double(frame.period_s * kSecondsToUs) +
                       " us)",
                   issue.bound);
        break;
      case BusIssueKind::kLinNoSlot:
        report.add(Severity::kError, "lin.no_slot", frame_subject(model, frame),
                   frame.description +
                       ": id has no slot in the master schedule table — "
                       "send() fails silently",
                   issue.bound);
        break;
      case BusIssueKind::kLinOversampled:
        report.add(Severity::kWarning, "lin.oversampled", frame_subject(model, frame),
                   frame.description + ": published every " +
                       config::format_double(frame.period_s * kSecondsToUs) +
                       " us but the schedule cycle is " +
                       config::format_double(bus.lin_cycle_s * kSecondsToUs) +
                       " us — intermediate values are overwritten",
                   issue.bound);
        break;
      case BusIssueKind::kFrDynamicOverflow:
        report.add(Severity::kError, "flexray.dynamic_overflow",
                   frame_subject(model, frame),
                   frame.description + ": " + std::to_string(frame.payload_bytes) +
                       "-byte frame does not fit the dynamic segment",
                   issue.bound);
        break;
      case BusIssueKind::kFrOversampled:
        report.add(Severity::kWarning, "flexray.oversampled",
                   frame_subject(model, frame),
                   frame.description + ": published every " +
                       config::format_double(frame.period_s * kSecondsToUs) +
                       " us but the communication cycle is " +
                       config::format_double(bus.fr_cycle_s * kSecondsToUs) +
                       " us — intermediate values are overwritten",
                   issue.bound);
        break;
    }
  }
}

void render_frame_bounds(const VehicleModel& model,
                         const std::vector<std::vector<std::size_t>>& per_bus,
                         const std::vector<FrameBound>& bounds, Report& report) {
  for (std::size_t b = 0; b < model.buses.size(); ++b) {
    double bus_max_s = 0.0;
    for (const std::size_t f : per_bus[b]) {
      if (!bounds[f].valid) continue;
      const FrameModel& frame = model.frames[f];
      report.add(Severity::kInfo, "rta.frame", frame_subject(model, frame),
                 frame.description + ": end-to-end worst case " +
                     config::format_double(bounds[f].e2e_s * kSecondsToUs) +
                     " us",
                 bounds[f].e2e_s * kSecondsToUs);
      bus_max_s = std::max(bus_max_s, bounds[f].e2e_s);
    }
    report.add(Severity::kInfo, "rta.bus", model.buses[b].scenario_name,
               "worst end-to-end frame response " +
                   config::format_double(bus_max_s * kSecondsToUs) + " us",
               bus_max_s * kSecondsToUs);
  }
  report.add(Severity::kInfo, "gw.delay", "central-gateway",
             "store-and-forward processing delay per hop",
             model.gateway_delay_s * kSecondsToUs);
}

void render_ecu(const VehicleModel& model, const EcuOutcome& outcome, Report& report) {
  const core::CockpitAppModel& app = model.app;
  const std::string ecu = app.ecu_name;

  if (outcome.frame_overflow) {
    report.add(Severity::kError, "ecu.frame_overflow", ecu,
               "partition budgets (" + std::to_string(outcome.budget_sum) +
                   " us) exceed the major frame (" +
                   std::to_string(app.major_frame_us) + " us)",
               static_cast<double>(outcome.budget_sum));
  } else {
    for (const scheduling::FpResponse& response : outcome.windows) {
      const std::string subject = ecu + "/" + response.name;
      if (response.schedulable)
        report.add(Severity::kInfo, "rta.partition", subject,
                   "window completes within " +
                       std::to_string(response.response_us) +
                       " us of the frame start",
                   static_cast<double>(response.response_us));
      else
        report.add(Severity::kError, "rta.unschedulable", subject,
                   "partition window cannot complete within the major frame",
                   static_cast<double>(response.response_us));
    }
  }

  std::int64_t window_offset = 0;
  for (std::size_t i = 0; i < app.partitions.size(); ++i) {
    const core::PartitionModel& partition = app.partitions[i];
    const std::string subject = ecu + "/" + partition.name;
    const std::int64_t demand = outcome.partition_demand[i];
    if (demand > partition.budget_us)
      report.add(Severity::kError, "partition.overcommitted", subject,
                 "runnable demand (" + std::to_string(demand) +
                     " us per frame) exceeds the budget (" +
                     std::to_string(partition.budget_us) + " us)",
                 static_cast<double>(demand));
    else if (!outcome.frame_overflow)
      for (const core::RunnableModel& runnable : partition.runnables) {
        // A job released anywhere in the cycle completes no later than one
        // full major frame plus its own window's end offset.
        const std::int64_t bound =
            app.major_frame_us + window_offset + partition.budget_us;
        report.add(Severity::kInfo, "rta.runnable", subject + "/" + runnable.name,
                   "activation-to-completion bound " + std::to_string(bound) +
                       " us",
                   static_cast<double>(bound));
      }
    window_offset += partition.budget_us;
  }

  // Publications buffered between frames are delivered at the first window
  // flush of the next major frame at the latest.
  if (!app.partitions.empty() && !outcome.frame_overflow) {
    const std::int64_t flush_bound =
        app.major_frame_us + app.partitions.front().budget_us;
    for (const core::TopicModel& topic : app.topics)
      report.add(Severity::kInfo, "rta.pubsub", ecu + "/" + topic.name,
                 "publish-to-delivery bound " + std::to_string(flush_bound) +
                     " us (flush at the first window boundary)",
                 static_cast<double>(flush_bound));
  }
}

void render_prob(const VehicleModel& model, std::size_t bus_idx,
                 const ProbOutcome& outcome, Report& report) {
  if (!outcome.model.armed()) return;
  const BusModel& bus = model.buses[bus_idx];
  if (bus.protocol != Protocol::kCan) return;
  report.add(Severity::kInfo, "prob.bus_error", bus.scenario_name,
             "stochastic error model: Poisson rate " +
                 config::format_double(outcome.model.poisson_rate_per_s) +
                 " errors/s, per-attempt probability " +
                 config::format_double(outcome.model.per_attempt_prob),
             outcome.model.poisson_rate_per_s);
  for (const FrameMissBound& fmb : outcome.frames) {
    const FrameModel& frame = model.frames[fmb.frame];
    if (fmb.tolerable_errors < 0) {
      report.add(Severity::kInfo, "prob.frame_miss", frame_subject(model, frame),
                 frame.description +
                     ": deadline-miss probability 1 (unschedulable even "
                     "error-free)",
                 1.0);
      continue;
    }
    report.add(Severity::kInfo, "prob.frame_miss", frame_subject(model, frame),
               frame.description + ": deadline-miss probability <= " +
                   config::format_double(fmb.miss_probability) + " (tolerates " +
                   std::to_string(fmb.tolerable_errors) +
                   " error(s) in the busy window, R(k_max) " +
                   config::format_double(fmb.response_at_kmax_s * kSecondsToUs) +
                   " us)",
               fmb.miss_probability);
  }
}

}  // namespace ev::analysis::passes
