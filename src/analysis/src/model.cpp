#include "ev/analysis/model.h"

#include <stdexcept>

#include "ev/core/cosim.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/network/topology.h"
#include "ev/sim/simulator.h"

namespace ev::analysis {

std::string to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kLin: return "LIN";
    case Protocol::kCan: return "CAN";
    case Protocol::kMost: return "MOST";
    case Protocol::kFlexRay: return "FlexRay";
  }
  return "CAN";
}

VehicleModel extract_model(const config::ScenarioSpec& spec) {
  spec.validate();
  core::VehicleSystemConfig config = core::to_vehicle_config(spec);
  // Mirror the composition root: the co-simulated BMS replaces the synthetic
  // source (VehicleSystem's constructor makes the same substitution).
  config.network.synthetic_bms_source = false;

  VehicleModel model;
  model.scenario = spec.name;
  model.app = core::cockpit_app_model(config, spec.subsystems.health);
  model.health_enabled = spec.subsystems.health;
  model.security_enabled = spec.subsystems.security;
  model.fault_events = spec.faults;
  model.cell_count = static_cast<std::size_t>(spec.pack.module_count) *
                     static_cast<std::size_t>(spec.pack.cells_per_module);

  // The topology builder wires buses, schedule tables, routes, and sources in
  // its constructor; without start() no event is ever scheduled — this is a
  // pure configuration readout.
  sim::Simulator sim;
  network::Figure1Network net(sim, config.network);

  const std::vector<network::Bus*> buses = net.buses();
  static constexpr const char* kScenarioNames[] = {
      "body_lin", "comfort_can", "infotainment_most", "safety_can",
      "chassis_flexray"};
  for (std::size_t i = 0; i < buses.size(); ++i) {
    BusModel bus;
    bus.display_name = buses[i]->name();
    bus.scenario_name = kScenarioNames[i];
    bus.bit_rate_bps = buses[i]->bit_rate();
    model.buses.push_back(std::move(bus));
  }

  BusModel& lin = model.buses[0];
  lin.protocol = Protocol::kLin;
  lin.lin_cycle_s = net.body_lin().cycle_time_s();
  lin.lin_slot_time_s =
      lin.lin_cycle_s / static_cast<double>(net.body_lin().schedule().size());
  for (const network::LinSlot& slot : net.body_lin().schedule())
    lin.lin_slot_ids.push_back(slot.frame_id);

  model.buses[1].protocol = Protocol::kCan;
  model.buses[3].protocol = Protocol::kCan;

  BusModel& most = model.buses[2];
  most.protocol = Protocol::kMost;
  most.most_frame_period_s = net.infotainment_most().frame_period_s();
  most.most_async_budget_bytes = net.infotainment_most().async_bytes_per_frame();

  BusModel& chassis = model.buses[4];
  chassis.protocol = Protocol::kFlexRay;
  const network::FlexRayConfig& fr = net.chassis_flexray().config();
  chassis.fr_cycle_s = net.chassis_flexray().cycle_time_s();
  chassis.fr_static_segment_s = net.chassis_flexray().static_segment_s();
  chassis.fr_slot_s =
      chassis.fr_static_segment_s / static_cast<double>(fr.static_slots.size());
  chassis.fr_minislot_s = fr.minislot_s;
  chassis.fr_dynamic_s = static_cast<double>(fr.minislot_count) * fr.minislot_s;
  for (std::size_t i = 0; i < fr.static_slots.size(); ++i)
    chassis.fr_static_slot.emplace(fr.static_slots[i].frame_id, i);

  // --- Periodic frames: topology sources + the co-sim's own publications ----
  const auto bus_index = [&buses](const network::Bus* bus) -> std::size_t {
    for (std::size_t i = 0; i < buses.size(); ++i)
      if (buses[i] == bus) return i;
    throw std::logic_error("extract_model: source on a bus outside Fig. 1");
  };
  for (const network::PeriodicSource& src : net.sources()) {
    FrameModel frame;
    frame.bus = bus_index(src.bus);
    frame.id = src.frame_id;
    frame.base_id = src.base_id;
    frame.payload_bytes = src.payload_bytes;
    frame.period_s = src.period_s;
    frame.description = src.description;
    // The Fig. 1 id blocks are per-domain: 0x800+ identifies MOST-native
    // traffic, which the topology builder anchors to its bus.
    frame.movable = src.base_id < 0x800;
    model.frames.push_back(std::move(frame));
  }
  {
    FrameModel bms;
    bms.bus = 4;
    bms.id = network::kFrameIdBmsStatus;
    bms.base_id = network::kFrameIdBmsStatus;
    bms.payload_bytes = 2 * sizeof(double);
    bms.period_s = spec.timing.bms_publish_period_s;
    bms.description = "BMS status";
    model.frames.push_back(std::move(bms));
  }
  if (spec.subsystems.security) {
    const core::SecuritySubsystem::Options security{};
    const security::ChannelConfig& channel = security.channel;
    FrameModel telemetry;
    telemetry.bus = 4;
    telemetry.id = core::kFrameIdSecureTelemetry;
    telemetry.base_id = core::kFrameIdSecureTelemetry;
    telemetry.payload_bytes =
        2 * sizeof(double) + channel.counter_bytes + channel.tag_bytes;
    telemetry.period_s = security.publish_period_s;
    telemetry.description = "secure telemetry";
    model.frames.push_back(std::move(telemetry));
  }

  // --- Gateway routes and the frames they inject downstream -----------------
  model.gateway_delay_s = net.gateway().processing_delay_s();
  for (const network::GatewayRoute& route : net.gateway().routes()) {
    RouteModel r;
    r.from_bus = bus_index(route.from);
    r.match_id = route.match_id;
    r.to_bus = bus_index(route.to);
    r.translated_id = route.translated_id;
    r.translated_payload = route.translated_payload;
    model.routes.push_back(r);
  }
  const std::size_t local_count = model.frames.size();
  for (const RouteModel& route : model.routes) {
    for (std::size_t i = 0; i < local_count; ++i) {
      const FrameModel& src = model.frames[i];
      if (src.bus != route.from_bus || src.id != route.match_id) continue;
      FrameModel out;
      out.bus = route.to_bus;
      out.id = route.translated_id;
      out.payload_bytes =
          route.translated_payload > 0 ? route.translated_payload : src.payload_bytes;
      out.period_s = src.period_s;
      out.description = src.description + " (routed)";
      out.routed = true;
      out.source_frame = i;
      // Translated wire ids may have been renumbered (arch.frame_id keys on
      // the original id); invert the remap to recover the base identifier.
      out.base_id = out.id;
      for (const config::FrameIdSpec& remap : spec.arch.frame_ids)
        if (remap.new_id == out.id) out.base_id = remap.frame_id;
      model.frames.push_back(std::move(out));
    }
  }

  // Frames that feed a gateway route are anchored: moving the source would
  // sever the cross-domain flow the route exists for. Renumbering is a CAN
  // notion (the id is the arbitration priority), so any frame whose final
  // bus is CAN takes it.
  for (FrameModel& frame : model.frames) {
    for (const RouteModel& route : model.routes)
      if (!frame.routed && frame.bus == route.from_bus && frame.id == route.match_id)
        frame.movable = false;
    frame.id_mutable = model.buses[frame.bus].protocol == Protocol::kCan;
  }

  // Classify the MOST ids actually in use (streams are private to the bus).
  for (const FrameModel& frame : model.frames)
    if (frame.bus == 2 && net.infotainment_most().is_synchronous(frame.id))
      most.most_sync_ids.push_back(frame.id);

  return model;
}

}  // namespace ev::analysis
