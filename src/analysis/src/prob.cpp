#include "ev/analysis/prob.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ev::analysis {

double poisson_pmf(double mean, int k) {
  if (k < 0) return 0.0;
  if (mean <= 0.0) return k == 0 ? 1.0 : 0.0;
  // Iterative pmf(k) = pmf(k-1) * mean / k keeps the evaluation exact-ish
  // without factorials; k stays small (<= the tolerable-error cap).
  double pmf = std::exp(-mean);
  for (int j = 0; j < k; ++j) pmf *= mean / static_cast<double>(j + 1);
  return pmf;
}

double poisson_tail_above(double mean, int k) {
  if (k < 0) return 1.0;
  double cum = 0.0;
  for (int j = 0; j <= k; ++j) cum += poisson_pmf(mean, j);
  return std::clamp(1.0 - cum, 0.0, 1.0);
}

double binomial_pmf(int n, double p, int k) {
  if (k < 0 || k > n || n < 0) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  // pmf(k) = pmf(k-1) * (n-k+1)/k * p/(1-p), seeded with (1-p)^n.
  double pmf = std::pow(1.0 - p, n);
  for (int j = 0; j < k; ++j)
    pmf *= static_cast<double>(n - j) / static_cast<double>(j + 1) * p / (1.0 - p);
  return pmf;
}

double combined_tail_above(double mean, int n, double p, int k) {
  if (k < 0) return 1.0;
  double cum = 0.0;
  for (int total = 0; total <= k; ++total)
    for (int a = 0; a <= total; ++a)
      cum += poisson_pmf(mean, a) * binomial_pmf(n, p, total - a);
  return std::clamp(1.0 - cum, 0.0, 1.0);
}

std::vector<BusErrorModel> derive_error_models(const VehicleModel& model) {
  std::vector<BusErrorModel> models(model.buses.size());
  for (const config::FaultEventSpec& event : model.fault_events) {
    if (event.kind != config::FaultKind::kBusErrorRate &&
        event.kind != config::FaultKind::kBusErrorProb)
      continue;
    for (std::size_t b = 0; b < model.buses.size(); ++b) {
      if (model.buses[b].scenario_name != event.target) continue;
      if (event.kind == config::FaultKind::kBusErrorRate)
        models[b].poisson_rate_per_s += event.value;
      else if (models[b].per_attempt_prob == 0.0)  // exact for the single-spec case
        models[b].per_attempt_prob = event.value;
      else
        models[b].per_attempt_prob =
            1.0 - (1.0 - models[b].per_attempt_prob) * (1.0 - event.value);
    }
  }
  return models;
}

ProbabilisticCanAnalyzer::ProbabilisticCanAnalyzer(VehicleModel model)
    : evaluator_(std::move(model)) {
  evaluator_.set_probabilistic(true);
}

Report ProbabilisticCanAnalyzer::report() { return evaluator_.report(); }

const ProbOutcome& ProbabilisticCanAnalyzer::bus_outcome(std::size_t bus) {
  evaluator_.evaluate();
  return evaluator_.prob_outcome(bus);
}

Report analyze_probabilistic(const VehicleModel& model) {
  ProbabilisticCanAnalyzer analyzer(model);
  return analyzer.report();
}

Report analyze_probabilistic_scenario(const config::ScenarioSpec& spec) {
  return analyze_probabilistic(extract_model(spec));
}

}  // namespace ev::analysis
