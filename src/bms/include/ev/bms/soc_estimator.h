/// \file soc_estimator.h
/// State-of-charge estimation from sensor data. Two estimators are provided:
/// plain coulomb counting (drifts with current-sensor bias) and a
/// voltage-corrected observer that feeds the terminal-voltage residual back
/// through the OCV slope — the standard industrial remedy for drift.
#pragma once

#include <memory>

#include "ev/battery/ocv_curve.h"

namespace ev::bms {

/// Interface of a per-cell SoC estimator. update() is called once per BMS
/// period with that period's sensed current and voltage.
class SocEstimator {
 public:
  virtual ~SocEstimator() = default;

  /// Advances the estimate by \p dt_s given the sensed cell current
  /// \p current_a (positive = discharge) and sensed terminal voltage
  /// \p voltage_v.
  virtual void update(double current_a, double voltage_v, double dt_s) = 0;

  /// Current estimate in [0, 1].
  [[nodiscard]] virtual double soc() const noexcept = 0;

  /// Resets the estimate to \p soc (e.g. after a rest-period OCV relaxation).
  virtual void reset(double soc) noexcept = 0;
};

/// Pure coulomb counting: soc -= I*dt / Q. Exact with a perfect sensor,
/// drifts linearly in time under sensor bias.
class CoulombCountingEstimator final : public SocEstimator {
 public:
  /// \p capacity_ah is the believed cell capacity; \p initial_soc the start
  /// estimate.
  CoulombCountingEstimator(double capacity_ah, double initial_soc);

  void update(double current_a, double voltage_v, double dt_s) override;
  [[nodiscard]] double soc() const noexcept override { return soc_; }
  void reset(double soc) noexcept override;

 private:
  double capacity_ah_;
  double soc_;
};

/// Coulomb counting with proportional output-injection from the voltage
/// residual (a one-state Luenberger observer linearized through the OCV
/// slope). Gain trades noise sensitivity against bias-drift correction.
class VoltageCorrectedEstimator final : public SocEstimator {
 public:
  /// \p curve must outlive the estimator. \p r0_ohm is the believed series
  /// resistance used to back out OCV from the loaded terminal voltage.
  /// \p gain is the observer gain in SoC per volt of residual per second.
  VoltageCorrectedEstimator(double capacity_ah, double initial_soc,
                            std::shared_ptr<const battery::OcvCurve> curve,
                            double r0_ohm, double gain = 0.02);

  void update(double current_a, double voltage_v, double dt_s) override;
  [[nodiscard]] double soc() const noexcept override { return soc_; }
  void reset(double soc) noexcept override;

 private:
  double capacity_ah_;
  double soc_;
  std::shared_ptr<const battery::OcvCurve> curve_;
  double r0_ohm_;
  double gain_;
};

}  // namespace ev::bms
