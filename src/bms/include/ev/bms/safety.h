/// \file safety.h
/// BMS safety monitor. The paper notes that exceeding a Li-Ion cell's
/// operating bounds damages the battery and in the worst case causes a
/// thermal runaway; this monitor implements the standard debounced
/// fault-detection + contactor-trip reaction.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ev::bms {

/// Fault classes the monitor distinguishes.
enum class FaultKind {
  kNone,
  kOvervoltage,
  kUndervoltage,
  kOvertemperature,
  kOvercurrent,
  kThermalRunaway,
};

/// Name of a fault kind for reports.
[[nodiscard]] std::string to_string(FaultKind kind);

/// Reaction the monitor requests from the vehicle.
enum class SafetyAction {
  kNone,          ///< All measurements inside the envelope.
  kDerate,        ///< Warning zone: request reduced power.
  kOpenContactor, ///< Critical: isolate the pack immediately.
};

/// Monitoring thresholds. Warning thresholds sit inside the hard limits so
/// the monitor derates before it trips.
struct SafetyLimits {
  double cell_min_voltage = 3.0;
  double cell_max_voltage = 4.2;
  double warn_margin_v = 0.05;       ///< Warning band inside the voltage limits.
  double max_temperature_c = 60.0;
  double warn_temperature_c = 50.0;
  double max_discharge_current_a = 400.0;
  double max_charge_current_a = 120.0;
  /// Consecutive violating samples before a fault latches (debounce against
  /// sensor noise).
  std::size_t debounce_samples = 3;
};

/// One detected fault with its location.
struct FaultRecord {
  FaultKind kind = FaultKind::kNone;
  std::size_t cell_index = 0;   ///< Global cell index (pack-wide), 0 for pack faults.
  double value = 0.0;           ///< Offending measurement.
};

/// Debounced envelope monitor over measured cell voltages, temperatures, and
/// pack current. Latching: once kOpenContactor is reached it stays until
/// reset() (mirrors real BMS behaviour where a tripped pack needs service).
class SafetyMonitor {
 public:
  explicit SafetyMonitor(SafetyLimits limits = {});

  /// Evaluates one BMS period of measurements. \p voltages and
  /// \p temperatures are pack-wide per-cell arrays; \p pack_current_a is the
  /// sensed string current (positive = discharge).
  SafetyAction evaluate(std::span<const double> voltages,
                        std::span<const double> temperatures, double pack_current_a);

  /// Faults latched so far (deduplicated by kind+cell).
  [[nodiscard]] const std::vector<FaultRecord>& faults() const noexcept { return faults_; }
  /// True once the monitor has requested contactor opening.
  [[nodiscard]] bool tripped() const noexcept { return tripped_; }
  /// Clears latched state (service reset).
  void reset() noexcept;
  /// Active limits.
  [[nodiscard]] const SafetyLimits& limits() const noexcept { return limits_; }

 private:
  void count_violation(FaultKind kind, std::size_t cell, double value, bool violating);

  SafetyLimits limits_;
  // Debounce counters keyed by (kind, cell); stored sparsely.
  struct Counter {
    FaultKind kind;
    std::size_t cell;
    std::size_t count;
  };
  std::vector<Counter> counters_;
  std::vector<FaultRecord> faults_;
  bool tripped_ = false;
  bool warn_ = false;
};

}  // namespace ev::bms
