/// \file module_manager.h
/// Module-management device of the hierarchical BMS (Fig. 2): the per-module
/// controller that owns the cell sensor front-end, runs per-cell SoC
/// estimation, and actuates the module's balancing hardware according to the
/// configured policy.
#pragma once

#include <memory>
#include <vector>

#include "ev/battery/module.h"
#include "ev/battery/sensors.h"
#include "ev/bms/balancing.h"
#include "ev/bms/soc_estimator.h"
#include "ev/util/rng.h"

namespace ev::bms {

/// Which SoC estimator each cell runs.
enum class EstimatorKind { kCoulombCounting, kVoltageCorrected };

/// Per-module BMS controller. Holds no reference to the module; the module
/// is passed to step() so the manager can be wired to any instance (and so
/// ownership stays with the battery pack).
class ModuleManager {
 public:
  /// Creates a manager for a module with \p cell_count cells whose believed
  /// capacity is \p capacity_ah, starting every estimate at \p initial_soc.
  ModuleManager(std::size_t cell_count, double capacity_ah, double initial_soc,
                EstimatorKind estimator, std::shared_ptr<const battery::OcvCurve> curve,
                double r0_ohm, std::unique_ptr<BalancingStrategy> strategy);

  /// One BMS period: measure every cell through the sensors, update the
  /// estimators with \p sensed_string_current_a, and run the balancing
  /// policy on \p module against \p pack_target_soc (pass 1.0 / a local
  /// value when no pack-wide target is known yet). Randomness for sensor
  /// noise comes from \p rng.
  void step(battery::SeriesModule& module, double sensed_string_current_a, double dt_s,
            util::Rng& rng, double pack_target_soc = 1.0);

  /// Estimated SoC per cell after the last step().
  [[nodiscard]] const std::vector<double>& estimated_soc() const noexcept {
    return estimates_;
  }
  /// Measured terminal voltages per cell after the last step() [V].
  [[nodiscard]] const std::vector<double>& measured_voltages() const noexcept {
    return voltages_;
  }
  /// Measured temperatures per cell after the last step() [degC].
  [[nodiscard]] const std::vector<double>& measured_temperatures() const noexcept {
    return temperatures_;
  }
  /// The balancing policy in force.
  [[nodiscard]] const BalancingStrategy& strategy() const noexcept { return *strategy_; }
  /// True when the policy reports the module balanced.
  [[nodiscard]] bool balanced() const;
  /// Cells supervised by this manager.
  [[nodiscard]] std::size_t cell_count() const noexcept { return estimates_.size(); }

  /// Injects \p fault into the voltage sensor of local cell \p cell (throws
  /// std::out_of_range past the module). Used by the fault-injection layer;
  /// the corrupted measurement then flows through the estimator and the
  /// SafetyMonitor's debounce path like any real reading.
  void inject_voltage_fault(std::size_t cell, const battery::SensorFault& fault);
  /// Same for the temperature sensor of local cell \p cell.
  void inject_temperature_fault(std::size_t cell, const battery::SensorFault& fault);

 private:
  // Every cell of a module runs the same estimator with the same believed
  // parameters, so the per-cell estimator state is just the estimate itself
  // (stored in estimates_) and the shared parameters live once here; step()
  // applies the update law (see soc_estimator.h) inline over the whole
  // module instead of virtual-dispatching per cell.
  EstimatorKind estimator_kind_;
  double capacity_ah_;
  double r0_ohm_;
  double observer_gain_ = 0.02;  // VoltageCorrectedEstimator's default gain
  std::shared_ptr<const battery::OcvCurve> curve_;
  std::vector<battery::VoltageSensor> voltage_sensors_;
  std::vector<battery::TemperatureSensor> temperature_sensors_;
  std::unique_ptr<BalancingStrategy> strategy_;
  std::vector<double> estimates_;
  std::vector<double> voltages_;
  std::vector<double> temperatures_;
};

}  // namespace ev::bms
