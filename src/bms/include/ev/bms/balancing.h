/// \file balancing.h
/// Cell-balancing policies. The paper contrasts state-of-the-art *passive*
/// balancing (bleeding high cells over a resistor) with *active* balancing
/// (transferring charge between cells), noting that the active approach
/// avoids wasting energy and thereby extends driving range and battery
/// lifetime; experiment E2 quantifies exactly that trade.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "ev/battery/module.h"

namespace ev::bms {

/// Interface of a per-module balancing policy. decide() receives the
/// *estimated* cell SoCs (never ground truth) and actuates the module's
/// balancing hardware.
class BalancingStrategy {
 public:
  virtual ~BalancingStrategy() = default;

  /// Inspects estimated SoCs and (re)commands the module's bleed switches
  /// and/or active-transfer unit. \p pack_target_soc is the pack-wide
  /// equalization target (the weakest cell's estimate) published by the
  /// central battery manager; module-local policies use it so the whole
  /// series string converges, not just each module internally.
  virtual void decide(std::span<const double> estimated_soc,
                      battery::SeriesModule& module, double pack_target_soc) = 0;

  /// Human-readable policy name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True once every cell is within tolerance of the weakest cell and the
  /// policy has released all actuators.
  [[nodiscard]] virtual bool converged(std::span<const double> estimated_soc) const = 0;
};

/// No balancing at all (baseline; the pack capacity decays to the weakest
/// cell's reach).
class NoBalancer final : public BalancingStrategy {
 public:
  void decide(std::span<const double> estimated_soc, battery::SeriesModule& module,
              double pack_target_soc) override;
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] bool converged(std::span<const double> estimated_soc) const override;
};

/// Passive balancing: engage the bleed resistor of every cell whose SoC
/// exceeds the pack target by more than \p tolerance.
class PassiveBalancer final : public BalancingStrategy {
 public:
  explicit PassiveBalancer(double tolerance = 0.003) noexcept : tolerance_(tolerance) {}

  void decide(std::span<const double> estimated_soc, battery::SeriesModule& module,
              double pack_target_soc) override;
  [[nodiscard]] std::string name() const override { return "passive"; }
  [[nodiscard]] bool converged(std::span<const double> estimated_soc) const override;

 private:
  double tolerance_;
};

/// Active balancing: command the module's transfer unit to move charge from
/// the fullest to the emptiest cell while the spread exceeds \p tolerance.
class ActiveBalancer final : public BalancingStrategy {
 public:
  explicit ActiveBalancer(double tolerance = 0.003) noexcept : tolerance_(tolerance) {}

  void decide(std::span<const double> estimated_soc, battery::SeriesModule& module,
              double pack_target_soc) override;
  [[nodiscard]] std::string name() const override { return "active"; }
  [[nodiscard]] bool converged(std::span<const double> estimated_soc) const override;

 private:
  double tolerance_;
};

/// Max-min estimated SoC spread; helper shared by the policies.
[[nodiscard]] double soc_spread(std::span<const double> estimated_soc) noexcept;

}  // namespace ev::bms
