/// \file battery_manager.h
/// Central battery-management controller of the hierarchical BMS (Fig. 2).
/// Aggregates the module managers over the (modelled) private BMS bus,
/// runs the pack-level safety monitor, commands the main contactor, and
/// publishes pack state and power limits to the rest of the vehicle.
#pragma once

#include <memory>
#include <vector>

#include "ev/battery/pack.h"
#include "ev/bms/module_manager.h"
#include "ev/bms/safety.h"

namespace ev::bms {

/// Balancing policy selection for a whole pack.
enum class BalancingKind { kNone, kPassive, kActive };

/// BMS configuration.
struct BmsConfig {
  EstimatorKind estimator = EstimatorKind::kVoltageCorrected;
  BalancingKind balancing = BalancingKind::kPassive;
  double balance_tolerance = 0.003;  ///< SoC spread below which balancing rests.
  SafetyLimits safety_limits;
  double initial_soc_estimate = 0.9;  ///< Start value for every estimator.
};

/// Pack-level state published after each BMS period.
struct BmsReport {
  double pack_soc = 0.0;           ///< Mean estimated SoC.
  double min_cell_soc = 0.0;       ///< Lowest estimated cell SoC.
  double max_cell_soc = 0.0;       ///< Highest estimated cell SoC.
  double soc_spread = 0.0;         ///< max - min estimate.
  double min_cell_voltage = 0.0;   ///< Lowest measured cell voltage [V].
  double max_cell_voltage = 0.0;   ///< Highest measured cell voltage [V].
  double max_temperature_c = 0.0;  ///< Hottest measured cell [degC].
  SafetyAction action = SafetyAction::kNone;
  double discharge_power_limit_w = 0.0;  ///< Derated available discharge power.
  double charge_power_limit_w = 0.0;     ///< Derated available charge power.
  bool balanced = true;                  ///< All modules within tolerance.
};

/// Central BMS. Owns one ModuleManager per pack module plus the safety
/// monitor; step() runs one BMS period end to end.
class BatteryManager {
 public:
  /// Wires a manager for \p pack with policy/estimator per \p config. The
  /// pack is referenced for layout only; it is passed again to step().
  BatteryManager(const battery::Pack& pack, BmsConfig config);

  /// One BMS period: per-module measurement/estimation/balancing, pack-level
  /// safety evaluation, contactor command, report synthesis.
  BmsReport step(battery::Pack& pack, double dt_s, util::Rng& rng);

  /// Last produced report.
  [[nodiscard]] const BmsReport& report() const noexcept { return report_; }
  /// Safety monitor (latched faults are readable here).
  [[nodiscard]] const SafetyMonitor& safety() const noexcept { return safety_; }
  /// Module manager \p i.
  [[nodiscard]] const ModuleManager& module_manager(std::size_t i) const {
    return managers_.at(i);
  }
  /// Configuration in force.
  [[nodiscard]] const BmsConfig& config() const noexcept { return config_; }

  /// Injects \p fault into the voltage sensor of pack-wide cell
  /// \p global_cell (module-major order); throws std::out_of_range past the
  /// pack. The fault surfaces only through measurements, so detection runs
  /// through the SafetyMonitor's debounce path exactly like a real failure.
  void inject_voltage_sensor_fault(std::size_t global_cell, const battery::SensorFault& fault);
  /// Same for the temperature sensor of pack-wide cell \p global_cell.
  void inject_temperature_sensor_fault(std::size_t global_cell,
                                       const battery::SensorFault& fault);

 private:
  [[nodiscard]] std::unique_ptr<BalancingStrategy> make_strategy() const;

  BmsConfig config_;
  std::vector<ModuleManager> managers_;
  SafetyMonitor safety_;
  BmsReport report_;
};

}  // namespace ev::bms
