#include "ev/bms/battery_manager.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace ev::bms {

std::unique_ptr<BalancingStrategy> BatteryManager::make_strategy() const {
  switch (config_.balancing) {
    case BalancingKind::kNone: return std::make_unique<NoBalancer>();
    case BalancingKind::kPassive:
      return std::make_unique<PassiveBalancer>(config_.balance_tolerance);
    case BalancingKind::kActive:
      return std::make_unique<ActiveBalancer>(config_.balance_tolerance);
  }
  return std::make_unique<NoBalancer>();
}

BatteryManager::BatteryManager(const battery::Pack& pack, BmsConfig config)
    : config_(config), safety_(config.safety_limits) {
  managers_.reserve(pack.module_count());
  for (std::size_t m = 0; m < pack.module_count(); ++m) {
    const battery::SeriesModule& mod = pack.module(m);
    const auto c0 = mod.cell(0);
    auto curve = std::make_shared<const battery::OcvCurve>(c0.ocv_curve());
    managers_.emplace_back(mod.cell_count(), c0.params().capacity_ah,
                           config.initial_soc_estimate, config.estimator, std::move(curve),
                           c0.params().r0_ohm, make_strategy());
  }
}

void BatteryManager::inject_voltage_sensor_fault(std::size_t global_cell,
                                                 const battery::SensorFault& fault) {
  for (ModuleManager& mm : managers_) {
    if (global_cell < mm.cell_count()) {
      mm.inject_voltage_fault(global_cell, fault);
      return;
    }
    global_cell -= mm.cell_count();
  }
  throw std::out_of_range("BatteryManager: global_cell beyond pack");
}

void BatteryManager::inject_temperature_sensor_fault(std::size_t global_cell,
                                                     const battery::SensorFault& fault) {
  for (ModuleManager& mm : managers_) {
    if (global_cell < mm.cell_count()) {
      mm.inject_temperature_fault(global_cell, fault);
      return;
    }
    global_cell -= mm.cell_count();
  }
  throw std::out_of_range("BatteryManager: global_cell beyond pack");
}

BmsReport BatteryManager::step(battery::Pack& pack, double dt_s, util::Rng& rng) {
  const double sensed_current = pack.sensed_current_a();

  // Pack-wide equalization target from the previous period's estimates (the
  // central manager's contribution to the hierarchical architecture).
  double pack_target = 1.0;
  for (const ModuleManager& mm : managers_)
    for (double est : mm.estimated_soc()) pack_target = std::min(pack_target, est);

  std::vector<double> all_voltages;
  std::vector<double> all_temps;
  std::vector<double> all_estimates;
  all_voltages.reserve(pack.cell_count());
  all_temps.reserve(pack.cell_count());
  all_estimates.reserve(pack.cell_count());

  bool balanced = true;
  for (std::size_t m = 0; m < managers_.size(); ++m) {
    managers_[m].step(pack.module(m), sensed_current, dt_s, rng, pack_target);
    const auto& mm = managers_[m];
    all_voltages.insert(all_voltages.end(), mm.measured_voltages().begin(),
                        mm.measured_voltages().end());
    all_temps.insert(all_temps.end(), mm.measured_temperatures().begin(),
                     mm.measured_temperatures().end());
    all_estimates.insert(all_estimates.end(), mm.estimated_soc().begin(),
                         mm.estimated_soc().end());
    balanced = balanced && mm.balanced();
  }

  // Active balancing across module boundaries: move charge from the module
  // with the highest mean estimate to the one with the lowest while their
  // means disagree by more than the tolerance.
  if (config_.balancing == BalancingKind::kActive && managers_.size() > 1) {
    std::size_t hi = 0, lo = 0;
    double hi_mean = -1.0, lo_mean = 2.0;
    for (std::size_t m = 0; m < managers_.size(); ++m) {
      double mean = 0.0;
      for (double est : managers_[m].estimated_soc()) mean += est;
      mean /= static_cast<double>(managers_[m].estimated_soc().size());
      if (mean > hi_mean) { hi_mean = mean; hi = m; }
      if (mean < lo_mean) { lo_mean = mean; lo = m; }
    }
    if (hi != lo && hi_mean - lo_mean > config_.balance_tolerance)
      pack.command_module_transfer(hi, lo);
    else
      pack.clear_module_transfer();
    balanced = balanced && hi_mean - lo_mean <= config_.balance_tolerance;
  }

  report_.action = safety_.evaluate(all_voltages, all_temps, sensed_current);
  if (report_.action == SafetyAction::kOpenContactor) pack.open_contactor();

  const auto [vmin, vmax] = std::minmax_element(all_voltages.begin(), all_voltages.end());
  const auto [smin, smax] = std::minmax_element(all_estimates.begin(), all_estimates.end());
  report_.min_cell_voltage = *vmin;
  report_.max_cell_voltage = *vmax;
  report_.max_temperature_c = *std::max_element(all_temps.begin(), all_temps.end());
  report_.min_cell_soc = *smin;
  report_.max_cell_soc = *smax;
  report_.soc_spread = *smax - *smin;
  double sum = 0.0;
  for (double s : all_estimates) sum += s;
  report_.pack_soc = sum / static_cast<double>(all_estimates.size());
  report_.balanced = balanced;

  // Power limits: full capability in the green zone, linear derating in the
  // warning zone, zero when tripped. Capability scales with pack voltage.
  const double pack_v = pack.open_circuit_voltage();
  const double full_discharge_w = pack_v * config_.safety_limits.max_discharge_current_a;
  const double full_charge_w = pack_v * config_.safety_limits.max_charge_current_a;
  double derate = 1.0;
  if (report_.action == SafetyAction::kOpenContactor) {
    derate = 0.0;
  } else if (report_.action == SafetyAction::kDerate) {
    derate = 0.3;
  }
  // Additional SoC-based taper near the edges of the usable window.
  if (report_.min_cell_soc < 0.1) derate *= std::max(report_.min_cell_soc / 0.1, 0.05);
  report_.discharge_power_limit_w = full_discharge_w * derate;
  double charge_derate = derate;
  if (report_.max_cell_soc > 0.9)
    charge_derate *= std::max((1.0 - report_.max_cell_soc) / 0.1, 0.05);
  report_.charge_power_limit_w = full_charge_w * charge_derate;
  return report_;
}

}  // namespace ev::bms
