#include "ev/bms/safety.h"

#include <algorithm>

namespace ev::bms {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kOvervoltage: return "overvoltage";
    case FaultKind::kUndervoltage: return "undervoltage";
    case FaultKind::kOvertemperature: return "overtemperature";
    case FaultKind::kOvercurrent: return "overcurrent";
    case FaultKind::kThermalRunaway: return "thermal-runaway";
  }
  return "?";
}

SafetyMonitor::SafetyMonitor(SafetyLimits limits) : limits_(limits) {}

void SafetyMonitor::count_violation(FaultKind kind, std::size_t cell, double value,
                                    bool violating) {
  auto it = std::find_if(counters_.begin(), counters_.end(), [&](const Counter& c) {
    return c.kind == kind && c.cell == cell;
  });
  if (!violating) {
    if (it != counters_.end()) counters_.erase(it);
    return;
  }
  if (it == counters_.end()) {
    counters_.push_back(Counter{kind, cell, 1});
    it = counters_.end() - 1;
  } else {
    ++it->count;
  }
  if (it->count >= limits_.debounce_samples) {
    const bool already = std::any_of(faults_.begin(), faults_.end(), [&](const FaultRecord& f) {
      return f.kind == kind && f.cell_index == cell;
    });
    if (!already) faults_.push_back(FaultRecord{kind, cell, value});
    tripped_ = true;
  }
}

SafetyAction SafetyMonitor::evaluate(std::span<const double> voltages,
                                     std::span<const double> temperatures,
                                     double pack_current_a) {
  warn_ = false;
  for (std::size_t i = 0; i < voltages.size(); ++i) {
    const double v = voltages[i];
    count_violation(FaultKind::kOvervoltage, i, v, v > limits_.cell_max_voltage);
    count_violation(FaultKind::kUndervoltage, i, v, v < limits_.cell_min_voltage);
    if (v > limits_.cell_max_voltage - limits_.warn_margin_v ||
        v < limits_.cell_min_voltage + limits_.warn_margin_v)
      warn_ = true;
  }
  for (std::size_t i = 0; i < temperatures.size(); ++i) {
    const double t = temperatures[i];
    count_violation(FaultKind::kOvertemperature, i, t, t > limits_.max_temperature_c);
    // Thermal runaway onset is immediate (no debounce): the reaction time
    // budget is too small to wait for confirmation samples.
    if (t > limits_.max_temperature_c + 20.0) {
      faults_.push_back(FaultRecord{FaultKind::kThermalRunaway, i, t});
      tripped_ = true;
    }
    if (t > limits_.warn_temperature_c) warn_ = true;
  }
  count_violation(FaultKind::kOvercurrent, 0, pack_current_a,
                  pack_current_a > limits_.max_discharge_current_a ||
                      -pack_current_a > limits_.max_charge_current_a);

  if (tripped_) return SafetyAction::kOpenContactor;
  if (warn_) return SafetyAction::kDerate;
  return SafetyAction::kNone;
}

void SafetyMonitor::reset() noexcept {
  counters_.clear();
  faults_.clear();
  tripped_ = false;
  warn_ = false;
}

}  // namespace ev::bms
