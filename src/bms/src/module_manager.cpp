#include "ev/bms/module_manager.h"

#include <algorithm>
#include <stdexcept>

#include "ev/util/math.h"

namespace ev::bms {

ModuleManager::ModuleManager(std::size_t cell_count, double capacity_ah, double initial_soc,
                             EstimatorKind estimator,
                             std::shared_ptr<const battery::OcvCurve> curve, double r0_ohm,
                             std::unique_ptr<BalancingStrategy> strategy)
    : estimator_kind_(estimator),
      capacity_ah_(capacity_ah),
      r0_ohm_(r0_ohm),
      curve_(std::move(curve)),
      strategy_(std::move(strategy)) {
  if (cell_count == 0) throw std::invalid_argument("ModuleManager: cell_count must be > 0");
  if (!strategy_) throw std::invalid_argument("ModuleManager: strategy is null");
  if (capacity_ah <= 0.0)
    throw std::invalid_argument("ModuleManager: capacity must be positive");
  if (estimator == EstimatorKind::kVoltageCorrected && !curve_)
    throw std::invalid_argument("ModuleManager: voltage-corrected needs an OCV curve");
  voltage_sensors_.resize(cell_count);
  temperature_sensors_.resize(cell_count);
  estimates_.assign(cell_count, util::clamp(initial_soc, 0.0, 1.0));
  voltages_.assign(cell_count, 0.0);
  temperatures_.assign(cell_count, 25.0);
}

void ModuleManager::step(battery::SeriesModule& module, double sensed_string_current_a,
                         double dt_s, util::Rng& rng, double pack_target_soc) {
  const std::size_t n = std::min(estimates_.size(), module.cell_count());
  for (std::size_t i = 0; i < n; ++i) {
    const double v_true = module.cell(i).terminal_voltage(sensed_string_current_a);
    const double t_true = module.cell(i).temperature_c();
    voltages_[i] = voltage_sensors_[i].measure(v_true, rng);
    temperatures_[i] = temperature_sensors_[i].measure(t_true, rng);
    // The manager knows its own actuator state, so it corrects the cell
    // current for an engaged bleed resistor.
    double cell_current = sensed_string_current_a;
    if (module.bleed_engaged(i))
      cell_current += voltages_[i] / module.hardware().bleed_resistor_ohm;
    // Estimator update laws inlined from soc_estimator.h (same operation
    // order, so the estimates stay bit-identical to the per-object path).
    switch (estimator_kind_) {
      case EstimatorKind::kCoulombCounting:
        estimates_[i] = util::clamp(
            estimates_[i] - cell_current * dt_s / (capacity_ah_ * 3600.0), 0.0, 1.0);
        break;
      case EstimatorKind::kVoltageCorrected: {
        double soc = estimates_[i];
        soc -= cell_current * dt_s / (capacity_ah_ * 3600.0);
        const double ocv_measured = voltages_[i] + cell_current * r0_ohm_;
        const double residual_v = ocv_measured - curve_->voltage(soc);
        soc += observer_gain_ * residual_v * dt_s;
        estimates_[i] = util::clamp(soc, 0.0, 1.0);
        break;
      }
    }
  }
  const double local_min = *std::min_element(estimates_.begin(), estimates_.end());
  strategy_->decide(estimates_, module, std::min(pack_target_soc, local_min));
}

bool ModuleManager::balanced() const { return strategy_->converged(estimates_); }

void ModuleManager::inject_voltage_fault(std::size_t cell, const battery::SensorFault& fault) {
  voltage_sensors_.at(cell).inject_fault(fault);
}

void ModuleManager::inject_temperature_fault(std::size_t cell,
                                             const battery::SensorFault& fault) {
  temperature_sensors_.at(cell).inject_fault(fault);
}

}  // namespace ev::bms
