#include "ev/bms/module_manager.h"

#include <algorithm>
#include <stdexcept>

namespace ev::bms {

ModuleManager::ModuleManager(std::size_t cell_count, double capacity_ah, double initial_soc,
                             EstimatorKind estimator,
                             std::shared_ptr<const battery::OcvCurve> curve, double r0_ohm,
                             std::unique_ptr<BalancingStrategy> strategy)
    : strategy_(std::move(strategy)) {
  if (cell_count == 0) throw std::invalid_argument("ModuleManager: cell_count must be > 0");
  if (!strategy_) throw std::invalid_argument("ModuleManager: strategy is null");
  estimators_.reserve(cell_count);
  for (std::size_t i = 0; i < cell_count; ++i) {
    switch (estimator) {
      case EstimatorKind::kCoulombCounting:
        estimators_.push_back(
            std::make_unique<CoulombCountingEstimator>(capacity_ah, initial_soc));
        break;
      case EstimatorKind::kVoltageCorrected:
        if (!curve)
          throw std::invalid_argument("ModuleManager: voltage-corrected needs an OCV curve");
        estimators_.push_back(std::make_unique<VoltageCorrectedEstimator>(
            capacity_ah, initial_soc, curve, r0_ohm));
        break;
    }
    voltage_sensors_.emplace_back();
    temperature_sensors_.emplace_back();
  }
  estimates_.assign(cell_count, initial_soc);
  voltages_.assign(cell_count, 0.0);
  temperatures_.assign(cell_count, 25.0);
}

void ModuleManager::step(battery::SeriesModule& module, double sensed_string_current_a,
                         double dt_s, util::Rng& rng, double pack_target_soc) {
  const std::size_t n = std::min(estimators_.size(), module.cell_count());
  for (std::size_t i = 0; i < n; ++i) {
    const double v_true = module.cell(i).terminal_voltage(sensed_string_current_a);
    const double t_true = module.cell(i).temperature_c();
    voltages_[i] = voltage_sensors_[i].measure(v_true, rng);
    temperatures_[i] = temperature_sensors_[i].measure(t_true, rng);
    // The manager knows its own actuator state, so it corrects the cell
    // current for an engaged bleed resistor.
    double cell_current = sensed_string_current_a;
    if (module.bleed_engaged(i))
      cell_current += voltages_[i] / module.hardware().bleed_resistor_ohm;
    estimators_[i]->update(cell_current, voltages_[i], dt_s);
    estimates_[i] = estimators_[i]->soc();
  }
  const double local_min = *std::min_element(estimates_.begin(), estimates_.end());
  strategy_->decide(estimates_, module, std::min(pack_target_soc, local_min));
}

bool ModuleManager::balanced() const { return strategy_->converged(estimates_); }

void ModuleManager::inject_voltage_fault(std::size_t cell, const battery::SensorFault& fault) {
  voltage_sensors_.at(cell).inject_fault(fault);
}

void ModuleManager::inject_temperature_fault(std::size_t cell,
                                             const battery::SensorFault& fault) {
  temperature_sensors_.at(cell).inject_fault(fault);
}

}  // namespace ev::bms
