#include "ev/bms/balancing.h"

#include <algorithm>

namespace ev::bms {

double soc_spread(std::span<const double> estimated_soc) noexcept {
  if (estimated_soc.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(estimated_soc.begin(), estimated_soc.end());
  return *hi - *lo;
}

void NoBalancer::decide(std::span<const double> /*estimated_soc*/,
                        battery::SeriesModule& module, double /*pack_target_soc*/) {
  for (std::size_t i = 0; i < module.cell_count(); ++i) module.set_bleed(i, false);
  module.clear_transfer();
}

bool NoBalancer::converged(std::span<const double> /*estimated_soc*/) const { return true; }

void PassiveBalancer::decide(std::span<const double> estimated_soc,
                             battery::SeriesModule& module, double pack_target_soc) {
  module.clear_transfer();
  if (estimated_soc.empty()) return;
  const double local_min = *std::min_element(estimated_soc.begin(), estimated_soc.end());
  // Bleed toward the pack-wide weakest cell (never above the local minimum,
  // which would waste energy without improving the string).
  const double target = std::min(local_min, pack_target_soc);
  for (std::size_t i = 0; i < module.cell_count() && i < estimated_soc.size(); ++i)
    module.set_bleed(i, estimated_soc[i] > target + tolerance_);
}

bool PassiveBalancer::converged(std::span<const double> estimated_soc) const {
  return soc_spread(estimated_soc) <= tolerance_;
}

void ActiveBalancer::decide(std::span<const double> estimated_soc,
                            battery::SeriesModule& module, double /*pack_target_soc*/) {
  for (std::size_t i = 0; i < module.cell_count(); ++i) module.set_bleed(i, false);
  if (estimated_soc.empty()) {
    module.clear_transfer();
    return;
  }
  const auto [lo, hi] = std::minmax_element(estimated_soc.begin(), estimated_soc.end());
  if (*hi - *lo <= tolerance_) {
    module.clear_transfer();
    return;
  }
  const auto from = static_cast<std::size_t>(hi - estimated_soc.begin());
  const auto to = static_cast<std::size_t>(lo - estimated_soc.begin());
  module.command_transfer(from, to);
}

bool ActiveBalancer::converged(std::span<const double> estimated_soc) const {
  return soc_spread(estimated_soc) <= tolerance_;
}

}  // namespace ev::bms
