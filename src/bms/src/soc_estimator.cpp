#include "ev/bms/soc_estimator.h"

#include <stdexcept>

#include "ev/util/math.h"

namespace ev::bms {

CoulombCountingEstimator::CoulombCountingEstimator(double capacity_ah, double initial_soc)
    : capacity_ah_(capacity_ah), soc_(util::clamp(initial_soc, 0.0, 1.0)) {
  if (capacity_ah <= 0.0)
    throw std::invalid_argument("CoulombCountingEstimator: capacity must be positive");
}

void CoulombCountingEstimator::update(double current_a, double /*voltage_v*/, double dt_s) {
  soc_ = util::clamp(soc_ - current_a * dt_s / (capacity_ah_ * 3600.0), 0.0, 1.0);
}

void CoulombCountingEstimator::reset(double soc) noexcept {
  soc_ = util::clamp(soc, 0.0, 1.0);
}

VoltageCorrectedEstimator::VoltageCorrectedEstimator(
    double capacity_ah, double initial_soc,
    std::shared_ptr<const battery::OcvCurve> curve, double r0_ohm, double gain)
    : capacity_ah_(capacity_ah),
      soc_(util::clamp(initial_soc, 0.0, 1.0)),
      curve_(std::move(curve)),
      r0_ohm_(r0_ohm),
      gain_(gain) {
  if (capacity_ah <= 0.0)
    throw std::invalid_argument("VoltageCorrectedEstimator: capacity must be positive");
  if (!curve_) throw std::invalid_argument("VoltageCorrectedEstimator: curve is null");
}

void VoltageCorrectedEstimator::update(double current_a, double voltage_v, double dt_s) {
  // Prediction: coulomb counting.
  soc_ -= current_a * dt_s / (capacity_ah_ * 3600.0);
  // Correction: compare the OCV implied by the measurement with the OCV the
  // estimate predicts, and inject the residual.
  const double ocv_measured = voltage_v + current_a * r0_ohm_;
  const double residual_v = ocv_measured - curve_->voltage(soc_);
  soc_ += gain_ * residual_v * dt_s;
  soc_ = util::clamp(soc_, 0.0, 1.0);
}

void VoltageCorrectedEstimator::reset(double soc) noexcept {
  soc_ = util::clamp(soc, 0.0, 1.0);
}

}  // namespace ev::bms
