#include "ev/middleware/pubsub.h"

#include <stdexcept>

namespace ev::middleware {

void PubSubBroker::subscribe(TopicId topic, SampleHandler handler) {
  if (!handler) throw std::invalid_argument("PubSubBroker: null handler");
  subscribers_[topic].push_back(std::move(handler));
}

void PubSubBroker::publish(TopicId topic, std::vector<std::uint8_t> data,
                           std::int64_t now_us) {
  pending_.push_back(Pending{topic, Sample{std::move(data), now_us}});
  if (metrics_)
    metrics_->set_max(backlog_peak_metric_, static_cast<double>(pending_.size()));
}

void PubSubBroker::flush() { flush_impl(/*timed=*/false, 0); }

void PubSubBroker::flush(std::int64_t now_us) { flush_impl(/*timed=*/true, now_us); }

void PubSubBroker::flush_impl(bool timed, std::int64_t now_us) {
  // Deliveries may trigger further publications; those wait for the next
  // flush point (keeps delivery timing deterministic).
  std::vector<Pending> batch;
  batch.swap(pending_);
  for (const Pending& p : batch) {
    const auto it = subscribers_.find(p.topic);
    if (it == subscribers_.end()) continue;
    for (const auto& handler : it->second) {
      handler(p.sample);
      ++delivered_;
      if (metrics_) {
        metrics_->add(delivered_metric_);
        if (timed)
          metrics_->observe(latency_us_metric_,
                            static_cast<double>(now_us - p.sample.published_us));
      }
    }
  }
}

void PubSubBroker::attach_observer(obs::MetricsRegistry& registry,
                                   std::string_view prefix) {
  const std::string base = std::string(prefix) + ".pubsub.";
  metrics_ = &registry;
  delivered_metric_ = registry.counter(base + "delivered");
  latency_us_metric_ = registry.histogram(base + "delivery_latency_us", 0.0, 1e6, 64);
  backlog_peak_metric_ = registry.gauge(base + "backlog.peak");
}

}  // namespace ev::middleware
