#include "ev/middleware/pubsub.h"

#include <limits>
#include <stdexcept>

namespace ev::middleware {

void PubSubBroker::subscribe(TopicId topic, SampleHandler handler) {
  if (!handler) throw std::invalid_argument("PubSubBroker: null handler");
  subscribers_[topic].push_back(std::move(handler));
}

void PubSubBroker::publish(TopicId topic, std::span<const std::uint8_t> data,
                           std::int64_t now_us) {
  if (arena_.size() + data.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::length_error("PubSubBroker: pending payload arena exceeds 4 GiB");
  const auto offset = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), data.begin(), data.end());
  pending_.push_back(
      Pending{topic, offset, static_cast<std::uint32_t>(data.size()), now_us});
  if (metrics_)
    metrics_->set_max(backlog_peak_metric_, static_cast<double>(pending_.size()));
}

void PubSubBroker::flush() { flush_impl(/*timed=*/false, 0); }

void PubSubBroker::flush(std::int64_t now_us) { flush_impl(/*timed=*/true, now_us); }

void PubSubBroker::flush_impl(bool timed, std::int64_t now_us) {
  // Deliveries may trigger further publications; those accumulate in the
  // swapped-in (empty) twin buffers and wait for the next flush point, which
  // keeps delivery timing deterministic and the handed-out views stable. The
  // batch lives in locals (seeded with the retained scratch capacity, handed
  // back afterwards) so even a re-entrant flush from a handler stays safe.
  std::vector<Pending> batch = std::move(flushing_);
  std::vector<std::uint8_t> bytes = std::move(flushing_arena_);
  batch.swap(pending_);
  bytes.swap(arena_);
  for (const Pending& p : batch) {
    const auto it = subscribers_.find(p.topic);
    if (it == subscribers_.end()) continue;
    const SampleView view{std::span<const std::uint8_t>(bytes.data() + p.offset, p.length),
                          p.published_us};
    for (const auto& handler : it->second) {
      handler(view);
      ++delivered_;
      if (metrics_) {
        metrics_->add(delivered_metric_);
        if (timed)
          metrics_->observe(latency_us_metric_,
                            static_cast<double>(now_us - p.published_us));
      }
    }
  }
  batch.clear();
  bytes.clear();
  flushing_ = std::move(batch);
  flushing_arena_ = std::move(bytes);
}

void PubSubBroker::attach_observer(obs::MetricsRegistry& registry,
                                   std::string_view prefix) {
  const std::string base = std::string(prefix) + ".pubsub.";
  metrics_ = &registry;
  delivered_metric_ = registry.counter(base + "delivered");
  latency_us_metric_ = registry.histogram(base + "delivery_latency_us", 0.0, 1e6, 64);
  backlog_peak_metric_ = registry.gauge(base + "backlog.peak");
}

SubscriberQueue::SubscriberQueue(PubSubBroker& broker, TopicId topic) {
  broker.subscribe(topic, [this](const SampleView& view) { enqueue(view); });
}

void SubscriberQueue::enqueue(const SampleView& view) {
  if (bytes_.size() + view.data.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::length_error("SubscriberQueue: byte ring exceeds 4 GiB");
  const auto offset = static_cast<std::uint32_t>(bytes_.size());
  bytes_.insert(bytes_.end(), view.data.begin(), view.data.end());
  records_.push_back(Record{offset, static_cast<std::uint32_t>(view.data.size()),
                            view.published_us});
  ++total_enqueued_;
}

}  // namespace ev::middleware
