#include "ev/middleware/pubsub.h"

#include <cstring>
#include <stdexcept>

namespace ev::middleware {

void PubSubBroker::subscribe(TopicId topic, SampleHandler handler) {
  if (!handler) throw std::invalid_argument("PubSubBroker: null handler");
  subscribers_[topic].push_back(std::move(handler));
}

void PubSubBroker::publish(TopicId topic, std::vector<std::uint8_t> data,
                           std::int64_t now_us) {
  pending_.push_back(Pending{topic, Sample{std::move(data), now_us}});
}

void PubSubBroker::flush() {
  // Deliveries may trigger further publications; those wait for the next
  // flush point (keeps delivery timing deterministic).
  std::vector<Pending> batch;
  batch.swap(pending_);
  for (const Pending& p : batch) {
    const auto it = subscribers_.find(p.topic);
    if (it == subscribers_.end()) continue;
    for (const auto& handler : it->second) {
      handler(p.sample);
      ++delivered_;
    }
  }
}

std::vector<std::uint8_t> PubSubBroker::encode_double(double value) {
  std::vector<std::uint8_t> out(sizeof(double));
  std::memcpy(out.data(), &value, sizeof(double));
  return out;
}

double PubSubBroker::decode_double(const Sample& sample) {
  if (sample.data.size() < sizeof(double))
    throw std::invalid_argument("decode_double: sample too small");
  double v = 0.0;
  std::memcpy(&v, sample.data.data(), sizeof(double));
  return v;
}

}  // namespace ev::middleware
