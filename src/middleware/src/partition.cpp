#include "ev/middleware/partition.h"

#include <stdexcept>

namespace ev::middleware {

Partition::Partition(std::string name, std::int64_t budget_us, int criticality)
    : name_(std::move(name)), budget_us_(budget_us), criticality_(criticality) {
  if (budget_us <= 0) throw std::invalid_argument("Partition: budget must be positive");
}

void Partition::deploy(Runnable runnable) {
  if (!runnable.body) throw std::invalid_argument("Partition: runnable has no body");
  if (runnable.period_us <= 0 || runnable.wcet_us <= 0)
    throw std::invalid_argument("Partition: period and wcet must be positive");
  runnables_.push_back(std::move(runnable));
  next_release_us_.push_back(0);
}

std::int64_t Partition::execute_window(std::int64_t now_us, std::int64_t window_us) {
  if (health_ != PartitionHealth::kHealthy) return 0;
  if (crash_pending_) {
    crash_pending_ = false;
    ++fault_count_;
    health_ = PartitionHealth::kStopped;
    return 0;
  }
  if (hang_windows_ > 0) {
    --hang_windows_;
    cpu_time_us_ += window_us;
    return window_us;  // spins through the whole window, completes nothing
  }
  std::int64_t consumed = 0;
  for (std::size_t i = 0; i < runnables_.size(); ++i) {
    Runnable& r = runnables_[i];
    if (next_release_us_[i] > now_us) continue;  // not due yet
    if (consumed + r.wcet_us > window_us) {
      // Budget exhausted: the job stays pending for the next window; the
      // partition never borrows time from its neighbours.
      ++jobs_deferred_;
      continue;
    }
    const RunOutcome outcome = r.body();
    next_release_us_[i] += r.period_us;
    if (next_release_us_[i] <= now_us) next_release_us_[i] = now_us + r.period_us;
    switch (outcome) {
      case RunOutcome::kOk:
        consumed += r.wcet_us;
        ++jobs_completed_;
        break;
      case RunOutcome::kOverrun:
        // The hypervisor preempts at the window boundary: the partition
        // consumes its whole remaining window, then is stopped fail-silent.
        consumed = window_us;
        ++fault_count_;
        health_ = PartitionHealth::kStopped;
        break;
      case RunOutcome::kCrash:
        consumed += r.wcet_us;
        ++fault_count_;
        health_ = PartitionHealth::kStopped;
        break;
    }
    if (health_ != PartitionHealth::kHealthy) break;
  }
  cpu_time_us_ += consumed;
  return consumed;
}

}  // namespace ev::middleware
