#include "ev/middleware/middleware.h"

#include <stdexcept>

namespace ev::middleware {

Middleware::Middleware(sim::Simulator& sim, std::string ecu_name,
                       std::int64_t major_frame_us)
    : sim_(&sim), name_(std::move(ecu_name)), major_frame_us_(major_frame_us) {
  if (major_frame_us <= 0)
    throw std::invalid_argument("Middleware: major frame must be positive");
}

std::int64_t Middleware::slack_us() const noexcept {
  std::int64_t used = 0;
  for (const FrameWindow& w : windows_) used += w.duration_us;
  return major_frame_us_ - used;
}

std::size_t Middleware::create_partition(std::string name, std::int64_t budget_us,
                                         int criticality) {
  if (budget_us > slack_us())
    throw std::invalid_argument("Middleware: partition budget exceeds frame slack");
  std::int64_t offset = 0;
  for (const FrameWindow& w : windows_) offset += w.duration_us;
  partitions_.push_back(std::make_unique<Partition>(std::move(name), budget_us, criticality));
  windows_.push_back(FrameWindow{partitions_.size() - 1, offset, budget_us});
  if (metrics_) register_partition_metrics(partitions_.size() - 1);
  return partitions_.size() - 1;
}

void Middleware::attach_observer(obs::MetricsRegistry& registry, obs::TraceLog* trace) {
  metrics_ = &registry;
  trace_ = trace;
  const std::string base = "mw." + name_ + ".";
  frames_metric_ = registry.counter(base + "frames");
  slack_metric_ = registry.gauge(base + "slack_us");
  registry.set(slack_metric_, static_cast<double>(slack_us()));
  broker_.attach_observer(registry, "mw." + name_);
  if (trace_) {
    span_category_ = trace_->intern("partition");
    util_attr_key_ = trace_->intern("budget_util");
  }
  partition_metrics_.clear();
  for (std::size_t i = 0; i < partitions_.size(); ++i) register_partition_metrics(i);
}

void Middleware::register_partition_metrics(std::size_t index) {
  const std::string base = "mw." + name_ + "." + partitions_[index]->name() + ".";
  PartitionMetrics pm;
  pm.budget_util = metrics_->gauge(base + "budget_util");
  pm.jobs_completed = metrics_->gauge(base + "jobs_completed");
  if (trace_) pm.span_name = trace_->intern(partitions_[index]->name());
  partition_metrics_.push_back(pm);
  metrics_->set(slack_metric_, static_cast<double>(slack_us()));
}

void Middleware::deploy(std::size_t index, Runnable runnable) {
  partitions_.at(index)->deploy(std::move(runnable));
}

void Middleware::start() {
  if (started_) return;
  started_ = true;
  frame_event_ = sim::ScheduledHandle{
      *sim_, sim_->schedule_periodic(sim::Time{}, sim::Time::us(major_frame_us_),
                                     [this] { run_frame(); })};
}

void Middleware::run_frame() {
  const std::int64_t frame_start_us = sim_->now().to_us() >= 0
                                          ? static_cast<std::int64_t>(sim_->now().to_us())
                                          : 0;
  for (const FrameWindow& w : windows_) {
    Partition& p = *partitions_[w.partition_index];
    const std::int64_t window_start_us = frame_start_us + w.offset_us;
    const std::int64_t consumed_us = p.execute_window(window_start_us, w.duration_us);
    if (metrics_) {
      const PartitionMetrics& pm = partition_metrics_[w.partition_index];
      const double util = w.duration_us > 0
                              ? static_cast<double>(consumed_us) /
                                    static_cast<double>(w.duration_us)
                              : 0.0;
      metrics_->set(pm.budget_util, util);
      metrics_->set(pm.jobs_completed, static_cast<double>(p.jobs_completed()));
      if (trace_ && consumed_us > 0) {
        const obs::SpanId span =
            trace_->complete(pm.span_name, span_category_, window_start_us * 1000,
                             (window_start_us + consumed_us) * 1000);
        trace_->attr(span, util_attr_key_, util);
      }
    }
    // Deterministic communication point: publications of this window become
    // visible before the next window starts.
    broker_.flush(frame_start_us + w.offset_us + w.duration_us);
  }
  ++frames_;
  if (metrics_) metrics_->add(frames_metric_);
}

}  // namespace ev::middleware
