#include "ev/middleware/middleware.h"

#include <stdexcept>

namespace ev::middleware {

Middleware::Middleware(sim::Simulator& sim, std::string ecu_name,
                       std::int64_t major_frame_us)
    : sim_(&sim), name_(std::move(ecu_name)), major_frame_us_(major_frame_us) {
  if (major_frame_us <= 0)
    throw std::invalid_argument("Middleware: major frame must be positive");
}

std::int64_t Middleware::slack_us() const noexcept {
  std::int64_t used = 0;
  for (const FrameWindow& w : windows_) used += w.duration_us;
  return major_frame_us_ - used;
}

std::size_t Middleware::create_partition(std::string name, std::int64_t budget_us,
                                         int criticality) {
  if (budget_us > slack_us())
    throw std::invalid_argument("Middleware: partition budget exceeds frame slack");
  std::int64_t offset = 0;
  for (const FrameWindow& w : windows_) offset += w.duration_us;
  partitions_.push_back(std::make_unique<Partition>(std::move(name), budget_us, criticality));
  windows_.push_back(FrameWindow{partitions_.size() - 1, offset, budget_us});
  return partitions_.size() - 1;
}

void Middleware::deploy(std::size_t index, Runnable runnable) {
  partitions_.at(index)->deploy(std::move(runnable));
}

void Middleware::start() {
  if (started_) return;
  started_ = true;
  sim_->schedule_periodic(sim::Time{}, sim::Time::us(major_frame_us_),
                          [this] { run_frame(); });
}

void Middleware::run_frame() {
  const std::int64_t frame_start_us = sim_->now().to_us() >= 0
                                          ? static_cast<std::int64_t>(sim_->now().to_us())
                                          : 0;
  for (const FrameWindow& w : windows_) {
    Partition& p = *partitions_[w.partition_index];
    (void)p.execute_window(frame_start_us + w.offset_us, w.duration_us);
    // Deterministic communication point: publications of this window become
    // visible before the next window starts.
    broker_.flush();
  }
  ++frames_;
}

}  // namespace ev::middleware
