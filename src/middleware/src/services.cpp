#include "ev/middleware/services.h"

#include <stdexcept>

#include "ev/middleware/partition.h"

namespace ev::middleware {

void ServiceRegistry::provide(const std::string& name, const Partition* host,
                              ServiceHandler handler) {
  if (!handler) throw std::invalid_argument("ServiceRegistry: null handler");
  services_[name] = Entry{host, std::move(handler)};
}

ServiceResponse ServiceRegistry::call(const std::string& name,
                                      const std::vector<std::uint8_t>& request) const {
  ServiceResponse response;
  const auto it = services_.find(name);
  if (it == services_.end()) {
    response.status = CallStatus::kUnknownService;
    return response;
  }
  if (it->second.host != nullptr &&
      it->second.host->health() != PartitionHealth::kHealthy) {
    response.status = CallStatus::kUnavailable;
    return response;
  }
  const auto result = it->second.handler(request);
  if (!result) {
    response.status = CallStatus::kError;
    return response;
  }
  response.status = CallStatus::kOk;
  response.payload = *result;
  return response;
}

bool ServiceRegistry::has_service(const std::string& name) const noexcept {
  return services_.contains(name);
}

std::vector<std::string> ServiceRegistry::service_names() const {
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, entry] : services_) names.push_back(name);
  return names;
}

}  // namespace ev::middleware
