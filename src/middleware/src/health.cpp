#include "ev/middleware/health.h"

#include <stdexcept>

namespace ev::middleware {

HealthMonitor::HealthMonitor(sim::Simulator& sim, Middleware& middleware, HealthConfig config)
    : sim_(&sim), mw_(&middleware), config_(config) {
  if (config_.missed_checks_to_restart == 0)
    throw std::invalid_argument("HealthMonitor: missed_checks_to_restart must be > 0");
  if (config_.check_period_us == 0) config_.check_period_us = middleware.major_frame_us();
  if (config_.check_period_us <= 0)
    throw std::invalid_argument("HealthMonitor: check period must be positive");
}

void HealthMonitor::start() {
  if (started_) throw std::logic_error("HealthMonitor: already started");
  started_ = true;
  watched_.resize(mw_->partition_count());
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    Watched* w = &watched_[i];
    mw_->deploy(i, Runnable{"heartbeat", config_.check_period_us, config_.heartbeat_wcet_us,
                            [this, w] {
                              ++w->beats;
                              w->last_beat = sim_->now();
                              return RunOutcome::kOk;
                            }});
  }
  // First check one period in: every partition gets a full period to beat.
  watchdog_ = sim::ScheduledHandle{
      *sim_, sim_->schedule_periodic(sim::After{sim::Time::us(config_.check_period_us)},
                                     sim::Time::us(config_.check_period_us),
                                     [this] { check(); })};
}

void HealthMonitor::attach_observer(obs::MetricsRegistry& registry) {
  const std::string base = "mw." + mw_->ecu_name() + ".health.";
  metrics_ = &registry;
  misses_metric_ = registry.counter(base + "heartbeat_misses");
  restarts_metric_ = registry.counter(base + "restarts");
  latency_metric_ = registry.histogram(base + "detection_latency_us", 0.0, 1e6, 64);
}

void HealthMonitor::check() {
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    Watched& w = watched_[i];
    if (w.beats != w.beats_at_check) {
      w.beats_at_check = w.beats;
      w.silent_checks = 0;
      continue;
    }
    ++w.silent_checks;
    ++misses_;
    if (metrics_) metrics_->add(misses_metric_);
    if (listener_) listener_(i, HealthEvent::kHeartbeatMiss, sim::Time{});
    if (w.silent_checks < config_.missed_checks_to_restart) continue;

    const sim::Time latency = sim_->now() - w.last_beat;
    if (metrics_) metrics_->observe(latency_metric_, latency.to_us());
    if (listener_) listener_(i, HealthEvent::kFailureDetected, latency);
    if (config_.auto_restart) {
      mw_->partition(i).restart();
      ++restarts_;
      if (metrics_) metrics_->add(restarts_metric_);
      if (listener_) listener_(i, HealthEvent::kRestart, latency);
    }
    // Either way the failure has been handled/reported; debounce restarts.
    w.silent_checks = 0;
    w.last_beat = sim_->now();
  }
}

}  // namespace ev::middleware
