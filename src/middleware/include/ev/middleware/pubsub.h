/// \file pubsub.h
/// Typed publish/subscribe signal plane of the middleware. Publications are
/// buffered and flushed at deterministic points chosen by the dispatcher
/// (end of each partition window), so communication timing is independent
/// of *where* a subscriber runs — the location transparency that lets
/// software tasks "be distributed in a more flexible way".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ev::middleware {

/// Topic identifier.
using TopicId = std::uint32_t;

/// A published sample: raw bytes plus the publication timestamp [us].
struct Sample {
  std::vector<std::uint8_t> data;
  std::int64_t published_us = 0;
};

/// Subscriber callback.
using SampleHandler = std::function<void(const Sample&)>;

/// Broker with deferred (deterministic) delivery.
class PubSubBroker {
 public:
  /// Registers \p handler for \p topic. Subscriptions are persistent.
  void subscribe(TopicId topic, SampleHandler handler);

  /// Buffers \p data on \p topic at time \p now_us; delivered on flush().
  void publish(TopicId topic, std::vector<std::uint8_t> data, std::int64_t now_us);

  /// Delivers all buffered samples in publication order. Called by the
  /// dispatcher at deterministic schedule points.
  void flush();

  /// Samples delivered so far.
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  /// Samples currently buffered.
  [[nodiscard]] std::size_t backlog() const noexcept { return pending_.size(); }

  /// Helpers to move doubles through the byte-oriented plane.
  [[nodiscard]] static std::vector<std::uint8_t> encode_double(double value);
  [[nodiscard]] static double decode_double(const Sample& sample);

 private:
  struct Pending {
    TopicId topic;
    Sample sample;
  };
  std::map<TopicId, std::vector<SampleHandler>> subscribers_;
  std::vector<Pending> pending_;
  std::uint64_t delivered_ = 0;
};

}  // namespace ev::middleware
