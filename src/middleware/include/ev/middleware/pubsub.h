/// \file pubsub.h
/// Typed publish/subscribe signal plane of the middleware. Publications are
/// buffered and flushed at deterministic points chosen by the dispatcher
/// (end of each partition window), so communication timing is independent
/// of *where* a subscriber runs — the location transparency that lets
/// software tasks "be distributed in a more flexible way".
///
/// Hot-path storage: published payloads are appended to a flat byte arena
/// and described by small fixed-size records; flush() swaps the arena with a
/// reusable scratch buffer (a two-deep ring) and hands subscribers views
/// (std::span) into it. After the buffers warm up to the scenario's peak
/// backlog, a publish/flush cycle performs no heap allocation and payload
/// bytes are copied exactly once (publisher -> arena).
///
/// Applications use the typed Topic<T> wrapper; the raw byte-oriented broker
/// API remains for gateways and generic tooling that forward opaque samples.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "ev/obs/metrics.h"

namespace ev::middleware {

/// Topic identifier.
using TopicId = std::uint32_t;

/// An owning published sample: raw bytes plus the publication timestamp
/// [us]. Kept for tooling that stores samples beyond the delivery callback;
/// the delivery path itself hands out SampleView.
struct Sample {
  std::vector<std::uint8_t> data;
  std::int64_t published_us = 0;
};

/// A delivered sample: a borrowed view of the payload bytes plus the
/// publication timestamp [us]. The view is valid only for the duration of
/// the subscriber callback (it points into the broker's flush buffer);
/// subscribers that need the bytes later must copy them (see Sample or
/// SubscriberQueue).
struct SampleView {
  std::span<const std::uint8_t> data;
  std::int64_t published_us = 0;

  /// Deep copy into an owning Sample.
  [[nodiscard]] Sample to_sample() const {
    return Sample{std::vector<std::uint8_t>(data.begin(), data.end()), published_us};
  }
};

/// Subscriber callback. The view argument is valid only during the call.
using SampleHandler = std::function<void(const SampleView&)>;

/// Broker with deferred (deterministic) delivery.
class PubSubBroker {
 public:
  /// Registers \p handler for \p topic. Subscriptions are persistent.
  void subscribe(TopicId topic, SampleHandler handler);

  /// Buffers a copy of \p data on \p topic at time \p now_us; delivered on
  /// flush(). This is the zero-copy entry point: the bytes go straight into
  /// the broker's arena with no intermediate container.
  void publish(TopicId topic, std::span<const std::uint8_t> data, std::int64_t now_us);

  /// Delivers all buffered samples in publication order. Called by the
  /// dispatcher at deterministic schedule points. The \p now_us overload
  /// additionally attributes per-sample delivery latency (now - published)
  /// to the attached observer.
  void flush();
  void flush(std::int64_t now_us);

  /// Samples delivered so far.
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  /// Samples currently buffered.
  [[nodiscard]] std::size_t backlog() const noexcept { return pending_.size(); }

  /// Attaches observability. Registers (under \p prefix, e.g. "mw.ecu0"):
  ///  - counter   `<prefix>.pubsub.delivered`
  ///  - histogram `<prefix>.pubsub.delivery_latency_us`
  ///  - gauge     `<prefix>.pubsub.backlog.peak`
  /// \p registry must outlive the broker's use; ids are interned here so the
  /// publish/flush hot paths stay allocation-free.
  void attach_observer(obs::MetricsRegistry& registry, std::string_view prefix);

 private:
  /// Descriptor of one buffered publication; the payload bytes live in the
  /// arena at [offset, offset + length).
  struct Pending {
    TopicId topic;
    std::uint32_t offset;
    std::uint32_t length;
    std::int64_t published_us;
  };
  void flush_impl(bool timed, std::int64_t now_us);

  std::map<TopicId, std::vector<SampleHandler>> subscribers_;
  std::vector<Pending> pending_;
  std::vector<std::uint8_t> arena_;  ///< payload bytes of pending_ records
  // Scratch twins swapped in at each flush so deliveries triggering further
  // publications never invalidate the views being handed out. Capacity is
  // retained across flushes — a ring of depth two.
  std::vector<Pending> flushing_;
  std::vector<std::uint8_t> flushing_arena_;
  std::uint64_t delivered_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId delivered_metric_ = obs::kInvalidId;
  obs::MetricId latency_us_metric_ = obs::kInvalidId;
  obs::MetricId backlog_peak_metric_ = obs::kInvalidId;
};

/// Pull-model subscriber endpoint: copies each delivered sample of one topic
/// into a flat byte ring at delivery time, and drains the backlog later as
/// views — one payload copy at enqueue, zero at drain. Useful for partition
/// tasks that want to consume a window's worth of samples in their own time
/// slot instead of reacting inside the flush.
class SubscriberQueue {
 public:
  /// Subscribes the queue to \p topic on \p broker (which must outlive it;
  /// broker subscriptions are persistent, so the queue must not move).
  SubscriberQueue(PubSubBroker& broker, TopicId topic);
  SubscriberQueue(const SubscriberQueue&) = delete;
  SubscriberQueue& operator=(const SubscriberQueue&) = delete;

  /// Queued (undrained) sample count.
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  /// Samples enqueued since construction.
  [[nodiscard]] std::uint64_t total_enqueued() const noexcept { return total_enqueued_; }

  /// Invokes `fn(const SampleView&)` for every queued sample in delivery
  /// order, then clears the queue (retaining capacity). The views are valid
  /// only during the callback.
  template <typename F>
  void drain(F&& fn) {
    for (const Record& r : records_)
      fn(SampleView{std::span<const std::uint8_t>(bytes_.data() + r.offset, r.length),
                    r.published_us});
    records_.clear();
    bytes_.clear();
  }

  /// Drops the backlog without delivering it.
  void clear() noexcept {
    records_.clear();
    bytes_.clear();
  }

 private:
  struct Record {
    std::uint32_t offset;
    std::uint32_t length;
    std::int64_t published_us;
  };
  void enqueue(const SampleView& view);

  std::vector<Record> records_;
  std::vector<std::uint8_t> bytes_;
  std::uint64_t total_enqueued_ = 0;
};

/// Typed view of one broker topic. T must be trivially copyable (POD-style:
/// the bytes on the wire *are* the object representation), which keeps the
/// plane deterministic and allocation-predictable — no serialization code,
/// no pointers smuggled through the middleware.
template <typename T>
class Topic {
  static_assert(std::is_trivially_copyable_v<T>,
                "Topic<T> payloads must be trivially copyable (POD)");
  static_assert(!std::is_pointer_v<T>,
                "Topic<T> must not carry pointers across partitions");

 public:
  /// Binds topic \p id on \p broker (which must outlive the Topic).
  Topic(PubSubBroker& broker, TopicId id) noexcept : broker_(&broker), id_(id) {}

  /// Publishes \p value at time \p now_us; delivered at the next flush. The
  /// object representation is written straight into the broker arena — no
  /// intermediate buffer.
  void publish(const T& value, std::int64_t now_us) {
    broker_->publish(
        id_,
        std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(&value),
                                      sizeof(T)),
        now_us);
  }

  /// Subscribes \p handler, callable as either handler(const T&) or
  /// handler(const T&, const SampleView&) when the publication metadata
  /// (timestamp) is needed.
  template <typename F>
  void subscribe(F handler) {
    broker_->subscribe(id_, [h = std::move(handler)](const SampleView& s) mutable {
      if constexpr (std::is_invocable_v<F&, const T&, const SampleView&>)
        h(decode(s), s);
      else
        h(decode(s));
    });
  }

  /// The wire form of \p value.
  [[nodiscard]] static std::vector<std::uint8_t> encode(const T& value) {
    std::vector<std::uint8_t> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    return bytes;
  }

  /// Reconstructs a value; throws std::invalid_argument on a size mismatch
  /// (subscribing the wrong type to a topic).
  [[nodiscard]] static T decode(const SampleView& sample) {
    if (sample.data.size() != sizeof(T))
      throw std::invalid_argument("Topic: sample size does not match payload type");
    T value;
    std::memcpy(&value, sample.data.data(), sizeof(T));
    return value;
  }
  /// Owning-sample twin of the view overload.
  [[nodiscard]] static T decode(const Sample& sample) {
    return decode(SampleView{
        std::span<const std::uint8_t>(sample.data.data(), sample.data.size()),
        sample.published_us});
  }

  [[nodiscard]] TopicId id() const noexcept { return id_; }
  [[nodiscard]] PubSubBroker& broker() noexcept { return *broker_; }

 private:
  PubSubBroker* broker_;
  TopicId id_;
};

}  // namespace ev::middleware
