/// \file pubsub.h
/// Typed publish/subscribe signal plane of the middleware. Publications are
/// buffered and flushed at deterministic points chosen by the dispatcher
/// (end of each partition window), so communication timing is independent
/// of *where* a subscriber runs — the location transparency that lets
/// software tasks "be distributed in a more flexible way".
///
/// Applications use the typed Topic<T> wrapper; the raw byte-oriented broker
/// API remains for gateways and generic tooling that forward opaque samples.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "ev/obs/metrics.h"

namespace ev::middleware {

/// Topic identifier.
using TopicId = std::uint32_t;

/// A published sample: raw bytes plus the publication timestamp [us].
struct Sample {
  std::vector<std::uint8_t> data;
  std::int64_t published_us = 0;
};

/// Subscriber callback.
using SampleHandler = std::function<void(const Sample&)>;

/// Broker with deferred (deterministic) delivery.
class PubSubBroker {
 public:
  /// Registers \p handler for \p topic. Subscriptions are persistent.
  void subscribe(TopicId topic, SampleHandler handler);

  /// Buffers \p data on \p topic at time \p now_us; delivered on flush().
  void publish(TopicId topic, std::vector<std::uint8_t> data, std::int64_t now_us);

  /// Delivers all buffered samples in publication order. Called by the
  /// dispatcher at deterministic schedule points. The \p now_us overload
  /// additionally attributes per-sample delivery latency (now - published)
  /// to the attached observer.
  void flush();
  void flush(std::int64_t now_us);

  /// Samples delivered so far.
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  /// Samples currently buffered.
  [[nodiscard]] std::size_t backlog() const noexcept { return pending_.size(); }

  /// Attaches observability. Registers (under \p prefix, e.g. "mw.ecu0"):
  ///  - counter   `<prefix>.pubsub.delivered`
  ///  - histogram `<prefix>.pubsub.delivery_latency_us`
  ///  - gauge     `<prefix>.pubsub.backlog.peak`
  /// \p registry must outlive the broker's use; ids are interned here so the
  /// publish/flush hot paths stay allocation-free.
  void attach_observer(obs::MetricsRegistry& registry, std::string_view prefix);

 private:
  struct Pending {
    TopicId topic;
    Sample sample;
  };
  void flush_impl(bool timed, std::int64_t now_us);

  std::map<TopicId, std::vector<SampleHandler>> subscribers_;
  std::vector<Pending> pending_;
  std::uint64_t delivered_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId delivered_metric_ = obs::kInvalidId;
  obs::MetricId latency_us_metric_ = obs::kInvalidId;
  obs::MetricId backlog_peak_metric_ = obs::kInvalidId;
};

/// Typed view of one broker topic. T must be trivially copyable (POD-style:
/// the bytes on the wire *are* the object representation), which keeps the
/// plane deterministic and allocation-predictable — no serialization code,
/// no pointers smuggled through the middleware.
template <typename T>
class Topic {
  static_assert(std::is_trivially_copyable_v<T>,
                "Topic<T> payloads must be trivially copyable (POD)");
  static_assert(!std::is_pointer_v<T>,
                "Topic<T> must not carry pointers across partitions");

 public:
  /// Binds topic \p id on \p broker (which must outlive the Topic).
  Topic(PubSubBroker& broker, TopicId id) noexcept : broker_(&broker), id_(id) {}

  /// Publishes \p value at time \p now_us; delivered at the next flush.
  void publish(const T& value, std::int64_t now_us) {
    broker_->publish(id_, encode(value), now_us);
  }

  /// Subscribes \p handler, callable as either handler(const T&) or
  /// handler(const T&, const Sample&) when the publication metadata
  /// (timestamp) is needed.
  template <typename F>
  void subscribe(F handler) {
    broker_->subscribe(id_, [h = std::move(handler)](const Sample& s) mutable {
      if constexpr (std::is_invocable_v<F&, const T&, const Sample&>)
        h(decode(s), s);
      else
        h(decode(s));
    });
  }

  /// The wire form of \p value.
  [[nodiscard]] static std::vector<std::uint8_t> encode(const T& value) {
    std::vector<std::uint8_t> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    return bytes;
  }

  /// Reconstructs a value; throws std::invalid_argument on a size mismatch
  /// (subscribing the wrong type to a topic).
  [[nodiscard]] static T decode(const Sample& sample) {
    if (sample.data.size() != sizeof(T))
      throw std::invalid_argument("Topic: sample size does not match payload type");
    T value;
    std::memcpy(&value, sample.data.data(), sizeof(T));
    return value;
  }

  [[nodiscard]] TopicId id() const noexcept { return id_; }
  [[nodiscard]] PubSubBroker& broker() noexcept { return *broker_; }

 private:
  PubSubBroker* broker_;
  TopicId id_;
};

}  // namespace ev::middleware
