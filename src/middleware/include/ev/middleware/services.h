/// \file services.h
/// Service-oriented architecture layer ([16]): named request/response
/// services with a registry, used for information and control services
/// (range queries, charging-station lookups, feature activation). Services
/// of a stopped partition answer with kUnavailable instead of propagating
/// the failure — the isolation property of Section 4.2.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ev::middleware {

class Partition;

/// Service call status.
enum class CallStatus {
  kOk,
  kUnknownService,
  kUnavailable,  ///< Hosting partition is stopped.
  kError,        ///< Handler reported failure.
};

/// A service response.
struct ServiceResponse {
  CallStatus status = CallStatus::kUnknownService;
  std::vector<std::uint8_t> payload;
};

/// Request handler: consumes a request payload, produces a response payload
/// or nullopt for kError.
using ServiceHandler =
    std::function<std::optional<std::vector<std::uint8_t>>(const std::vector<std::uint8_t>&)>;

/// Registry mapping service names to handlers hosted in partitions.
class ServiceRegistry {
 public:
  /// Registers \p handler under \p name, hosted by \p host (may be null for
  /// infrastructure services that are always available).
  void provide(const std::string& name, const Partition* host, ServiceHandler handler);

  /// Synchronous call. Availability is checked against the host partition's
  /// health at call time.
  [[nodiscard]] ServiceResponse call(const std::string& name,
                                     const std::vector<std::uint8_t>& request) const;

  /// True when \p name is registered (regardless of availability).
  [[nodiscard]] bool has_service(const std::string& name) const noexcept;
  /// Registered service names.
  [[nodiscard]] std::vector<std::string> service_names() const;

 private:
  struct Entry {
    const Partition* host;
    ServiceHandler handler;
  };
  std::map<std::string, Entry> services_;
};

}  // namespace ev::middleware
