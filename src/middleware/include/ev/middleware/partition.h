/// \file partition.h
/// Software partitions: the virtualization unit of the lean middleware the
/// paper proposes. Each partition owns a time budget within the dispatcher's
/// major frame and a set of runnables; temporal isolation means an
/// overrunning or crashing partition can never consume another partition's
/// window — the property that makes ECU consolidation admissible for
/// mixed-criticality software.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ev::middleware {

/// Outcome of executing one runnable job.
enum class RunOutcome {
  kOk,       ///< Completed within its WCET.
  kOverrun,  ///< Exceeded its declared WCET (temporal fault).
  kCrash,    ///< Raised an error (spatial/logical fault).
};

/// A schedulable unit of application software.
struct Runnable {
  std::string name;
  std::int64_t period_us = 10000;  ///< Activation period.
  std::int64_t wcet_us = 200;      ///< Declared worst-case execution time.
  /// Body; returns the outcome the infrastructure should assume. Real
  /// middleware measures overruns; the simulation declares them.
  std::function<RunOutcome()> body;
};

/// Health state of a partition.
enum class PartitionHealth {
  kHealthy,
  kStopped,  ///< Shut down by the middleware after a fault (fail-silent).
};

/// A time/space partition hosting runnables.
class Partition {
 public:
  /// \p budget_us is the partition's execution window per major frame;
  /// \p criticality is informational (reports, placement policies).
  Partition(std::string name, std::int64_t budget_us, int criticality = 0);

  /// Adds \p runnable; allowed at runtime (the paper's "purchase
  /// functionality while the vehicle is already in operation").
  void deploy(Runnable runnable);

  /// Executes all due jobs within \p window_us of budget, advancing the
  /// partition-local release bookkeeping to \p now_us. A kCrash or kOverrun
  /// outcome stops the partition (fail-silent) and leaves the remaining
  /// jobs unserved. Returns consumed time [us].
  std::int64_t execute_window(std::int64_t now_us, std::int64_t window_us);

  /// Restores a stopped partition (maintenance restart). Also clears any
  /// pending injected faults so the restarted partition runs healthy.
  void restart() noexcept {
    health_ = PartitionHealth::kHealthy;
    crash_pending_ = false;
    hang_windows_ = 0;
  }

  /// Arms a crash fault: the next execute_window() call fails immediately
  /// (fault counted, partition stopped fail-silent) without running any
  /// runnable body. Deterministic injection point for the fault plan.
  void inject_crash() noexcept { crash_pending_ = true; }
  /// Arms a hang fault: the next \p windows execute_window() calls consume
  /// the entire window while completing no job (livelock/infinite loop).
  /// The partition stays nominally healthy, so only a missed heartbeat —
  /// not the health flag — can reveal the failure.
  void inject_hang(std::uint32_t windows) noexcept { hang_windows_ = windows; }
  /// True while an injected crash or hang is pending.
  [[nodiscard]] bool fault_pending() const noexcept {
    return crash_pending_ || hang_windows_ > 0;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t budget_us() const noexcept { return budget_us_; }
  [[nodiscard]] int criticality() const noexcept { return criticality_; }
  [[nodiscard]] PartitionHealth health() const noexcept { return health_; }
  [[nodiscard]] std::size_t runnable_count() const noexcept { return runnables_.size(); }
  /// Jobs completed since construction.
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept { return jobs_completed_; }
  /// Jobs that could not run in their window (budget exhausted).
  [[nodiscard]] std::uint64_t jobs_deferred() const noexcept { return jobs_deferred_; }
  /// Faults observed (overruns + crashes).
  [[nodiscard]] std::uint64_t fault_count() const noexcept { return fault_count_; }
  /// Total execution time consumed [us].
  [[nodiscard]] std::int64_t cpu_time_us() const noexcept { return cpu_time_us_; }

 private:
  std::string name_;
  std::int64_t budget_us_;
  int criticality_;
  PartitionHealth health_ = PartitionHealth::kHealthy;
  std::vector<Runnable> runnables_;
  std::vector<std::int64_t> next_release_us_;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_deferred_ = 0;
  std::uint64_t fault_count_ = 0;
  std::int64_t cpu_time_us_ = 0;
  bool crash_pending_ = false;
  std::uint32_t hang_windows_ = 0;
};

}  // namespace ev::middleware
