/// \file middleware.h
/// The lean middleware runtime of Section 4.1: a time-triggered partition
/// dispatcher (ARINC-653-style major frame) combined with the
/// publish/subscribe plane and the SOA registry. It abstracts the
/// underlying ECU: applications see topics, services, and periodic
/// activation — never the hardware — which is what permits consolidating
/// many functions onto few ECUs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ev/middleware/partition.h"
#include "ev/middleware/pubsub.h"
#include "ev/middleware/services.h"
#include "ev/obs/metrics.h"
#include "ev/obs/span_trace.h"
#include "ev/sim/simulator.h"

namespace ev::middleware {

/// One window of the major frame.
struct FrameWindow {
  std::size_t partition_index = 0;
  std::int64_t offset_us = 0;    ///< Start within the major frame.
  std::int64_t duration_us = 0;  ///< Window length (>= partition budget use).
};

/// Middleware runtime bound to one (possibly consolidated) ECU.
class Middleware {
 public:
  /// \p major_frame_us is the dispatcher cycle length.
  Middleware(sim::Simulator& sim, std::string ecu_name, std::int64_t major_frame_us);

  /// Creates a partition with \p budget_us per major frame; returns its
  /// index. The window is appended back-to-back after existing windows and
  /// must fit in the major frame.
  std::size_t create_partition(std::string name, std::int64_t budget_us,
                               int criticality = 0);

  /// Deploys \p runnable into partition \p index (allowed at runtime).
  void deploy(std::size_t index, Runnable runnable);

  /// Starts dispatching major frames on the simulator. The dispatcher
  /// periodic is owned by the Middleware (RAII) and cancelled on
  /// destruction, so a Middleware may be torn down mid-run safely.
  void start();

  /// The pub/sub plane.
  [[nodiscard]] PubSubBroker& broker() noexcept { return broker_; }
  /// The SOA registry.
  [[nodiscard]] ServiceRegistry& services() noexcept { return registry_; }
  /// Partition access.
  [[nodiscard]] Partition& partition(std::size_t index) { return *partitions_.at(index); }
  [[nodiscard]] const Partition& partition(std::size_t index) const {
    return *partitions_.at(index);
  }
  [[nodiscard]] std::size_t partition_count() const noexcept { return partitions_.size(); }
  /// Configured windows.
  [[nodiscard]] const std::vector<FrameWindow>& windows() const noexcept { return windows_; }
  /// Major frames executed.
  [[nodiscard]] std::uint64_t frames_run() const noexcept { return frames_; }
  /// Dispatcher cycle length [us].
  [[nodiscard]] std::int64_t major_frame_us() const noexcept { return major_frame_us_; }
  /// Unallocated time per major frame [us] (consolidation headroom).
  [[nodiscard]] std::int64_t slack_us() const noexcept;
  /// ECU name.
  [[nodiscard]] const std::string& ecu_name() const noexcept { return name_; }

  /// Attaches observability under the prefix `mw.<ecu_name>`. Per major
  /// frame the dispatcher then maintains:
  ///  - counter `mw.<ecu>.frames` and gauge `mw.<ecu>.slack_us`
  ///  - per partition: gauge `mw.<ecu>.<part>.budget_util` (window time
  ///    consumed / window length) and gauge `mw.<ecu>.<part>.jobs_completed`
  ///  - the broker's pub/sub metrics (see PubSubBroker::attach_observer),
  ///    with delivery latency attributed at each window-boundary flush
  /// When \p trace is given, every executed partition window is recorded as
  /// a span (category "partition") carrying its budget utilization.
  /// Partitions created after attachment are instrumented as well. All ids
  /// are interned here — the dispatch hot path never allocates.
  void attach_observer(obs::MetricsRegistry& registry, obs::TraceLog* trace = nullptr);

 private:
  struct PartitionMetrics {
    obs::MetricId budget_util = obs::kInvalidId;
    obs::MetricId jobs_completed = obs::kInvalidId;
    obs::MetricId span_name = obs::kInvalidId;  // TraceLog interner id
  };

  void run_frame();
  void register_partition_metrics(std::size_t index);

  sim::Simulator* sim_;
  std::string name_;
  std::int64_t major_frame_us_;
  sim::ScheduledHandle frame_event_;  // owns the major-frame dispatch periodic
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<FrameWindow> windows_;
  PubSubBroker broker_;
  ServiceRegistry registry_;
  std::uint64_t frames_ = 0;
  bool started_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  obs::MetricId frames_metric_ = obs::kInvalidId;
  obs::MetricId slack_metric_ = obs::kInvalidId;
  obs::MetricId span_category_ = obs::kInvalidId;  // TraceLog interner id
  obs::MetricId util_attr_key_ = obs::kInvalidId;  // TraceLog interner id
  std::vector<PartitionMetrics> partition_metrics_;
};

}  // namespace ev::middleware
