/// \file health.h
/// Health-monitoring service for the partitioned middleware: every partition
/// publishes a heartbeat from inside its own time window, and a watchdog
/// running on the dispatcher's timeline detects partitions that stop beating
/// (crash, hang, overrun-stop) and restarts them. This is the reaction half
/// of the fault-injection story — detection happens purely through the
/// heartbeat channel, never by peeking at injected-fault state, so the
/// measured detection latency is an honest property of the architecture.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ev/middleware/middleware.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"

namespace ev::middleware {

/// Watchdog policy.
struct HealthConfig {
  /// Watchdog evaluation period [us]; 0 means one check per major frame.
  std::int64_t check_period_us = 0;
  /// Consecutive checks without a fresh heartbeat before the partition is
  /// declared failed. Two is the classic debounce: one silent check can be
  /// phase alignment, two is a dead partition.
  std::uint32_t missed_checks_to_restart = 2;
  /// Declared WCET of the injected heartbeat runnable [us]. Kept tiny so
  /// monitoring does not perturb the partitions' real budgets.
  std::int64_t heartbeat_wcet_us = 1;
  /// Restart failed partitions automatically. When false the watchdog only
  /// detects and reports (useful for measuring raw detection latency).
  bool auto_restart = true;
};

/// What the watchdog observed about a partition.
enum class HealthEvent {
  kHeartbeatMiss,  ///< One silent check (below the restart threshold).
  kFailureDetected,  ///< Threshold reached; partition declared failed.
  kRestart,          ///< Partition restarted by the watchdog.
};

/// Per-partition heartbeat publishing plus a dispatcher-level watchdog.
class HealthMonitor {
 public:
  /// Called on every watchdog event with the partition index, the event,
  /// and — for kFailureDetected — the elapsed time since the last good
  /// heartbeat (the detection latency; zero otherwise).
  using Listener = std::function<void(std::size_t, HealthEvent, sim::Time)>;

  HealthMonitor(sim::Simulator& sim, Middleware& middleware, HealthConfig config = {});

  /// Deploys one heartbeat runnable into every existing partition and arms
  /// the periodic watchdog. Call after the partitions are created and
  /// before (or after) Middleware::start(); monitoring begins at the next
  /// check period. Must be called at most once. The watchdog event is owned
  /// by the monitor (RAII) and is cancelled when the monitor is destroyed,
  /// so a HealthMonitor may safely outlive neither the simulator nor be
  /// destroyed mid-scenario without leaving a dangling periodic behind.
  void start();

  /// Registers \p listener for watchdog events.
  void set_listener(Listener listener) { listener_ = std::move(listener); }

  /// Attaches observability under `mw.<ecu>.health.`:
  ///  - counter `mw.<ecu>.health.heartbeat_misses` (every silent check)
  ///  - counter `mw.<ecu>.health.restarts`
  ///  - histogram `mw.<ecu>.health.detection_latency_us` (time from the
  ///    last good heartbeat to the failure declaration)
  void attach_observer(obs::MetricsRegistry& registry);

  /// Partitions restarted by the watchdog.
  [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }
  /// Silent checks observed across all partitions.
  [[nodiscard]] std::uint64_t heartbeat_misses() const noexcept { return misses_; }
  /// Heartbeats received from partition \p index.
  [[nodiscard]] std::uint64_t heartbeats(std::size_t index) const {
    return watched_.at(index).beats;
  }

 private:
  struct Watched {
    std::uint64_t beats = 0;           ///< Heartbeats published so far.
    std::uint64_t beats_at_check = 0;  ///< Count seen at the previous check.
    sim::Time last_beat{};             ///< Timestamp of the newest heartbeat.
    std::uint32_t silent_checks = 0;   ///< Consecutive checks without a beat.
  };

  void check();

  sim::Simulator* sim_;
  Middleware* mw_;
  HealthConfig config_;
  sim::ScheduledHandle watchdog_;  // owns the periodic check event
  std::vector<Watched> watched_;
  Listener listener_;
  bool started_ = false;
  std::uint64_t restarts_ = 0;
  std::uint64_t misses_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId misses_metric_ = obs::kInvalidId;
  obs::MetricId restarts_metric_ = obs::kInvalidId;
  obs::MetricId latency_metric_ = obs::kInvalidId;
};

}  // namespace ev::middleware
