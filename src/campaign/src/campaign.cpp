#include "ev/campaign/campaign.h"

#include <cstdio>
#include <optional>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>

#include "ev/campaign/parallel.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/obs/export.h"
#include "ev/util/crc.h"
#include "ev/util/stats.h"

namespace ev::campaign {
namespace {

/// Everything one worker produces; folded on the coordinator in seed order.
struct Shard {
  SeedRun run;
  obs::MetricsRegistry metrics;
};

Shard run_one(const config::ScenarioSpec& base, std::uint64_t seed) {
  config::ScenarioSpec spec = base;
  spec.powertrain.seed = seed;
  spec.fault_seed = seed;

  std::unique_ptr<core::VehicleSystem> vehicle;
  const core::ScenarioRunResult result = core::run_scenario(spec, &vehicle);
  const std::string json = core::result_json(result);

  Shard shard;
  shard.run.seed = seed;
  shard.run.digest = util::crc32_ieee(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(json.data()), json.size()));
  shard.run.distance_km = result.cosim.cycle.distance_km;
  shard.run.battery_energy_out_wh = result.cosim.cycle.battery_energy_out_wh;
  shard.run.consumption_wh_km = result.cosim.cycle.consumption_wh_km;
  shard.run.final_soc = result.cosim.cycle.final_soc;
  if (auto* obs = vehicle->find_subsystem<core::ObservabilitySubsystem>())
    shard.metrics.merge(obs->metrics());
  return shard;
}

void write_double(std::ostream& out, double value) {
  out << config::format_double(value);
}

void write_stat_row(std::ostream& out, const char* key,
                    const util::RunningStats& stats) {
  out << '"' << key << "\":{\"min\":";
  write_double(out, stats.min());
  out << ",\"mean\":";
  write_double(out, stats.mean());
  out << ",\"max\":";
  write_double(out, stats.max());
  out << '}';
}

}  // namespace

CampaignResult run_scenario_campaign(const config::ScenarioSpec& spec,
                                     const CampaignOptions& options) {
  if (options.seeds.count <= 0)
    throw std::invalid_argument("campaign: seed count must be positive");
  spec.validate();

  // Fan out: every rung runs on a private simulator stack and writes only
  // its own slot. Fold back in seed-index order on this thread, so the
  // aggregate is a pure function of (spec, seeds) — never of the job count.
  std::vector<std::optional<Shard>> shards(
      static_cast<std::size_t>(options.seeds.count));
  parallel_for(options.seeds.count, options.jobs, [&](int i) {
    shards[static_cast<std::size_t>(i)].emplace(run_one(spec, options.seeds.seed(i)));
  });

  CampaignResult result;
  result.scenario = spec.name;
  result.seeds = options.seeds;
  result.runs.reserve(shards.size());
  for (std::optional<Shard>& shard : shards) {
    result.runs.push_back(shard->run);
    result.metrics.merge(shard->metrics);
  }
  return result;
}

void write_campaign_json(const CampaignResult& result, std::ostream& out) {
  out << "{\"scenario\":\"" << result.scenario << "\",";
  out << "\"seeds\":{\"first\":" << result.seeds.first
      << ",\"stride\":" << result.seeds.stride << ",\"count\":" << result.seeds.count
      << "},";

  util::RunningStats distance, energy_out, consumption, soc;
  out << "\"runs\":[";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const SeedRun& run = result.runs[i];
    char digest[16];
    std::snprintf(digest, sizeof digest, "%08x", run.digest);
    if (i > 0) out << ',';
    out << "{\"seed\":" << run.seed << ",\"digest\":\"" << digest
        << "\",\"distance_km\":";
    write_double(out, run.distance_km);
    out << ",\"battery_energy_out_wh\":";
    write_double(out, run.battery_energy_out_wh);
    out << ",\"consumption_wh_km\":";
    write_double(out, run.consumption_wh_km);
    out << ",\"final_soc\":";
    write_double(out, run.final_soc);
    out << '}';
    distance.add(run.distance_km);
    energy_out.add(run.battery_energy_out_wh);
    consumption.add(run.consumption_wh_km);
    soc.add(run.final_soc);
  }
  out << "],";

  out << "\"cross_seed\":{";
  write_stat_row(out, "distance_km", distance);
  out << ',';
  write_stat_row(out, "battery_energy_out_wh", energy_out);
  out << ',';
  write_stat_row(out, "consumption_wh_km", consumption);
  out << ',';
  write_stat_row(out, "final_soc", soc);
  out << "},";

  std::ostringstream metrics;
  obs::write_metrics_json(result.metrics, metrics);
  std::string snapshot = metrics.str();
  while (!snapshot.empty() && snapshot.back() == '\n') snapshot.pop_back();
  out << "\"metrics\":" << snapshot << "}\n";
}

std::string campaign_json(const CampaignResult& result) {
  std::ostringstream out;
  write_campaign_json(result, out);
  return out.str();
}

}  // namespace ev::campaign
