/// \file parallel.h
/// A minimal fixed-size worker pool for embarrassingly parallel task fans.
/// parallel_for(count, jobs, fn) runs fn(0..count-1) on up to `jobs` threads
/// (the calling thread participates, so jobs=1 never spawns). Tasks are
/// handed out through one atomic cursor; callers that need deterministic
/// aggregation collect per-index results into a pre-sized slot array and
/// fold them on the calling thread in index order afterwards — that is the
/// pattern the campaign runner and the bench harness build on.
#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ev::campaign {

/// Resolves a user-facing --jobs value: <= 0 means one job per hardware
/// thread, and the result is clamped to [1, count] so a small fan never
/// spawns idle workers.
[[nodiscard]] inline int resolve_jobs(int jobs, int count) noexcept {
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs <= 0) jobs = 1;
  return std::clamp(jobs, 1, std::max(count, 1));
}

/// Runs fn(i) once for every i in [0, count) on up to `jobs` threads
/// (resolve_jobs semantics). Index handout order is nondeterministic across
/// threads; completion of the call is a full barrier. The first exception a
/// task throws is rethrown on the calling thread after all workers drain —
/// remaining tasks still run, so the slot-array pattern never observes a
/// half-written slot.
inline void parallel_for(int count, int jobs, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  jobs = resolve_jobs(jobs, count);
  if (jobs == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<int> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto drain = [&] {
    for (;;) {
      const int i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs) - 1);
  for (int t = 1; t < jobs; ++t) pool.emplace_back(drain);
  drain();  // the calling thread is worker 0
  for (std::thread& worker : pool) worker.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace ev::campaign
