/// \file campaign.h
/// Parallel, bit-deterministic scenario campaigns. A campaign fans one
/// declarative scenario out over an arithmetic seed ladder (the same ladder
/// shape the bench harness uses), runs every rung on a private
/// Simulator/VehicleSystem/MetricsRegistry, and folds the shards back
/// together on the coordinating thread in seed-index order. Because every
/// run is a pure function of (spec, seed) and the fold order is fixed, the
/// campaign report — per-seed result digests, cross-seed min/mean/max
/// tables, and the merged metrics registry — is byte-identical for any
/// worker count. `evsys campaign` and bench_e20 are thin wrappers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ev/config/scenario.h"
#include "ev/obs/metrics.h"

namespace ev::campaign {

/// Arithmetic seed ladder: seed(i) = first + i * stride for i in [0, count).
struct SeedPlan {
  std::uint64_t first = 1;
  std::uint64_t stride = 1;
  int count = 8;

  [[nodiscard]] std::uint64_t seed(int index) const noexcept {
    return first + static_cast<std::uint64_t>(index) * stride;
  }
};

struct CampaignOptions {
  SeedPlan seeds;
  int jobs = 1;  ///< Worker threads; <= 0 means one per hardware thread.
};

/// One rung of the ladder, in seed-index order.
struct SeedRun {
  std::uint64_t seed = 0;
  std::uint32_t digest = 0;     ///< CRC-32 of the per-seed result JSON.
  double distance_km = 0.0;
  double battery_energy_out_wh = 0.0;
  double consumption_wh_km = 0.0;
  double final_soc = 0.0;
};

/// The aggregate report. Move-only (the merged registry interns names).
struct CampaignResult {
  std::string scenario;  ///< spec.name
  SeedPlan seeds;
  std::vector<SeedRun> runs;      ///< Seed-index order, one entry per rung.
  obs::MetricsRegistry metrics;   ///< Obs shards merged in seed-index order
                                  ///< (empty when the scenario disables obs).
};

/// Runs \p spec once per ladder rung on up to options.jobs workers. Each
/// rung gets the rung seed as both its powertrain and fault-plan seed; the
/// rest of the spec is shared. Same (spec, seeds) ⇒ the same result for any
/// jobs value. Throws what scenario building/running throws; the first
/// worker error wins and the campaign completes its remaining rungs first.
[[nodiscard]] CampaignResult run_scenario_campaign(const config::ScenarioSpec& spec,
                                                   const CampaignOptions& options);

/// Renders the deterministic campaign report as one JSON object: the seed
/// plan, per-seed digests + headline drive figures, cross-seed min/mean/max
/// tables over those figures, and the merged metrics snapshot. The worker
/// count is deliberately absent — output must not depend on it.
void write_campaign_json(const CampaignResult& result, std::ostream& out);
[[nodiscard]] std::string campaign_json(const CampaignResult& result);

}  // namespace ev::campaign
