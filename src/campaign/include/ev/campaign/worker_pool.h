/// \file worker_pool.h
/// A persistent fixed-size worker pool for repeated task fans. parallel_for
/// spawns and joins threads per call, which is fine for a campaign's one big
/// fan but too heavy for a tick loop that fans out thousands of times; a
/// WorkerPool keeps its threads parked on a condition variable between
/// rounds. The handout/aggregation contract is identical to parallel_for:
/// one atomic cursor, the calling thread participates, jobs=1 never spawns a
/// thread, the first task exception is rethrown on the caller after the
/// round drains — so per-index slot arrays plus a serial index-order fold
/// stay the determinism pattern.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "ev/campaign/parallel.h"

namespace ev::campaign {

class WorkerPool {
 public:
  /// Creates a pool that runs rounds on up to \p jobs threads including the
  /// caller (resolve_jobs semantics against an unbounded fan; <= 0 means one
  /// per hardware thread). jobs=1 runs every round inline.
  explicit WorkerPool(int jobs)
      : jobs_(resolve_jobs(jobs, std::numeric_limits<int>::max())) {
    threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
    for (int t = 1; t < jobs_; ++t)
      threads_.emplace_back([this] { worker_loop(); });
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : threads_) worker.join();
  }

  /// Number of threads a round may use, caller included.
  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Runs fn(i) once for every i in [0, count); returns only after every
  /// worker has left the round (full barrier), so per-index slots are safe
  /// to fold immediately. Single caller, not reentrant.
  void run(int count, const std::function<void(int)>& fn) {
    if (count <= 0) return;
    if (jobs_ == 1 || count == 1) {
      for (int i = 0; i < count; ++i) fn(i);  // exceptions propagate directly
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      count_ = count;
      cursor_.store(0, std::memory_order_relaxed);
      finished_ = 0;
      ++generation_;
    }
    wake_.notify_all();
    drain(fn, count);
    std::unique_lock<std::mutex> lock(mutex_);
    // Every worker checks in exactly once per generation, and the next
    // generation cannot start before all have — so fn_ never dangles.
    done_.wait(lock,
               [this] { return finished_ == static_cast<int>(threads_.size()); });
    fn_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  void drain(const std::function<void(int)>& fn, int count) {
    for (;;) {
      const int i = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* fn = nullptr;
      int count = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
        if (stopping_) return;
        seen = generation_;
        fn = fn_;
        count = count_;
      }
      drain(*fn, count);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++finished_;
      }
      done_.notify_all();
    }
  }

  int jobs_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(int)>* fn_ = nullptr;
  int count_ = 0;
  std::atomic<int> cursor_{0};
  std::uint64_t generation_ = 0;
  int finished_ = 0;
  bool stopping_ = false;
  std::exception_ptr error_ = nullptr;
};

}  // namespace ev::campaign
