// Experiment E15 (paper Section 2 "Drive-by-wire", ref [10]): redundancy
// design for brake-by-wire. The paper's argument: "with most software errors
// being of systematic nature, straightforward component duplication may not
// be sufficient"; diverse implementations (or non-identical hardware) are
// needed. Two views:
//  (a) deterministic fault scenarios: what each design does under one
//      systematic fault, one random fault, and both;
//  (b) Monte-Carlo missions with rare fault arrivals: probability that a
//      mission contains a *dangerous* (undetected wrong output) cycle vs a
//      *safe detected* loss of function.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/bywire/brake_system.h"
#include "ev/bywire/redundancy.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::bywire;

RedundantChannelSet make_design(std::size_t replicas, bool diverse,
                                double systematic_rate) {
  return diverse ? make_diverse_redundancy(replicas, 0.0, systematic_rate)
                 : make_identical_redundancy(replicas, 0.0, systematic_rate);
}

const char* classify(const VoteResult& r) {
  if (r.undetected_wrong) return "DANGEROUS (wrong output voted through)";
  if (!r.valid) return "fail-safe (loss detected, function degraded)";
  return "masked (correct output maintained)";
}

void scenario_table() {
  ev::util::Table table("deterministic fault scenarios (one actuation cycle)",
                        {"design", "1 systematic fault", "1 random fault",
                         "systematic + random"});
  struct Design {
    const char* name;
    std::size_t replicas;
    bool diverse;
  };
  for (const Design d : {Design{"duplex identical", 2, false},
                         Design{"duplex diverse", 2, true},
                         Design{"triplex identical", 3, false},
                         Design{"triplex diverse", 3, true}}) {
    ev::util::Rng rng(1);
    auto sys = make_design(d.replicas, d.diverse, 0.0);
    sys.inject_systematic_fault(0);
    const VoteResult syst = sys.actuate(0.5, rng);

    auto rnd = make_design(d.replicas, d.diverse, 0.0);
    rnd.inject_random_fault(0);
    const VoteResult random = rnd.actuate(0.5, rng);

    auto both = make_design(d.replicas, d.diverse, 0.0);
    both.inject_systematic_fault(0);
    // The random fault hits a replica of a *different* implementation when
    // diversity provides one.
    both.inject_random_fault(d.replicas - 1);
    const VoteResult combo = both.actuate(0.5, rng);

    table.add_row({d.name, classify(syst), classify(random), classify(combo)});
  }
  table.print();
}

void monte_carlo_table() {
  // Rare arrivals tuned so roughly half the missions see one systematic
  // event: the designs then separate by what that event *does*.
  constexpr int kMissions = 300;
  constexpr double kMissionHours = 0.05;
  const double cycles =
      kMissionHours * 3600.0 * 200.0;  // BrakeSystemConfig default rate
  const double systematic_rate = 0.7 / cycles;
  const double random_rate = 0.2 / cycles;

  ev::util::Table table("Monte-Carlo missions (300 runs, ~0.7 systematic + ~0.2 "
                        "random events expected per run)",
                        {"design", "missions w/ dangerous cycles",
                         "missions w/ detected loss", "clean missions"});
  struct Design {
    const char* name;
    std::size_t replicas;
    bool diverse;
  };
  for (const Design d : {Design{"simplex", 1, false}, Design{"duplex identical", 2, false},
                         Design{"duplex diverse", 2, true},
                         Design{"triplex identical", 3, false},
                         Design{"triplex diverse", 3, true},
                         Design{"5x diverse", 5, true}}) {
    int dangerous = 0, detected = 0, clean = 0;
    evbench::run_seeded_campaign(13, 977, kMissions, [&](std::uint64_t seed, int) {
      BrakeSystemConfig cfg;
      cfg.replicas = d.replicas;
      cfg.diverse = d.diverse;
      cfg.random_fault_rate = random_rate;
      cfg.systematic_fault_rate = systematic_rate;
      ev::util::Rng rng(seed);
      const BrakeMissionReport r = simulate_brake_mission(cfg, kMissionHours, rng);
      if (r.wrong_output_cycles > 0)
        ++dangerous;
      else if (r.loss_of_function_cycles > 0)
        ++detected;
      else
        ++clean;
    });
    if (d.diverse && d.replicas == 3) {
      evbench::set_gauge("e15.triplex_diverse.dangerous_missions",
                         static_cast<double>(dangerous));
      evbench::set_gauge("e15.triplex_diverse.clean_missions",
                         static_cast<double>(clean));
    }
    auto pct = [&](int n) { return ev::util::fmt_pct(n / double(kMissions)); };
    table.add_row({d.name, pct(dangerous), pct(detected), pct(clean)});
  }
  table.print();
  std::puts("expected shape: identical replication leaves the dangerous-"
            "mission probability at the simplex level (every copy fails "
            "together and votes the wrong value through); diverse triplex "
            "masks single systematic faults entirely, and duplex diverse "
            "converts them into detected fail-safe losses — the paper's case "
            "for diversity over duplication.\n");
}

void run_experiment() {
  std::puts("E15 — brake-by-wire redundancy: identical vs diverse replicas\n");
  scenario_table();
  monte_carlo_table();
}

void bm_vote_cycle(benchmark::State& state) {
  RedundantChannelSet set = make_diverse_redundancy(3, 0.0, 0.0);
  ev::util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(set.actuate(0.5, rng));
}
BENCHMARK(bm_vote_cycle);

void bm_brake_mission(benchmark::State& state) {
  BrakeSystemConfig cfg;
  for (auto _ : state) {
    ev::util::Rng rng(3);
    benchmark::DoNotOptimize(simulate_brake_mission(cfg, 0.05, rng));
  }
}
BENCHMARK(bm_brake_mission)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e15_drive_by_wire", argc, argv);
}
