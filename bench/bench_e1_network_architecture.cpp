// Experiment E1 (paper Fig. 1): the heterogeneous five-bus in-vehicle
// network with a central gateway. Regenerates per-bus utilization/latency
// and the cross-domain (through-gateway) end-to-end latencies under the
// representative message set, at increasing load.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/network/topology.h"
#include "ev/sim/simulator.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::network;
using ev::sim::Simulator;
using ev::sim::Time;

void run_experiment() {
  std::puts("E1 — Fig. 1 heterogeneous in-vehicle network (30 s simulated)\n");

  Simulator sim;
  evbench::observe(sim);
  Figure1Network net(sim);
  for (Bus* bus : net.buses()) bus->attach_observer(evbench::metrics());
  net.start();
  sim.run_until(Time::s(30));

  ev::util::Table buses("per-bus load and latency",
                        {"bus", "bit rate", "utilization", "frames delivered",
                         "mean latency", "p99 latency"});
  for (Bus* bus : net.buses()) {
    buses.add_row({bus->name(), ev::util::fmt_si(bus->bit_rate(), 1) + "bit/s",
                   ev::util::fmt_pct(bus->utilization(), 2),
                   std::to_string(bus->delivered_count()),
                   ev::util::fmt(bus->latency().mean() * 1e3, 3) + " ms",
                   ev::util::fmt(bus->latency().percentile(99) * 1e3, 3) + " ms"});
  }
  buses.print();

  ev::util::Table flows("cross-domain flows through the central gateway",
                        {"flow", "samples", "mean e2e", "max e2e"});
  for (const auto& [name, series] : net.flow_latency()) {
    flows.add_row({name, std::to_string(series.count()),
                   ev::util::fmt(series.mean() * 1e3, 3) + " ms",
                   ev::util::fmt(series.max() * 1e3, 3) + " ms"});
  }
  flows.print();
  std::printf("gateway: %zu frames forwarded, %zu dropped\n\n",
              net.gateway().forwarded_count(), net.gateway().dropped_count());
  evbench::set_gauge("e1.gateway.forwarded",
                     static_cast<double>(net.gateway().forwarded_count()));
  evbench::set_gauge("e1.gateway.dropped",
                     static_cast<double>(net.gateway().dropped_count()));

  // Load sweep: utilization and worst flow latency vs message-rate scale.
  ev::util::Table sweep("load sweep (message rate scale)",
                        {"scale", "safety CAN util", "chassis FR util",
                         "worst cross-domain e2e"});
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    Simulator s2;
    Figure1Config cfg;
    cfg.load_scale = scale;
    Figure1Network n2(s2, cfg);
    n2.start();
    s2.run_until(Time::s(10));
    double worst = 0.0;
    for (const auto& [name, series] : n2.flow_latency())
      worst = std::max(worst, series.max());
    sweep.add_row({ev::util::fmt(scale, 1),
                   ev::util::fmt_pct(n2.safety_can().utilization(), 2),
                   ev::util::fmt_pct(n2.chassis_flexray().utilization(), 2),
                   ev::util::fmt(worst * 1e3, 3) + " ms"});
  }
  sweep.print();
}

void bm_figure1_simulation(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Figure1Network net(sim);
    net.start();
    sim.run_until(Time::s(1));
    benchmark::DoNotOptimize(net.gateway().forwarded_count());
  }
}
BENCHMARK(bm_figure1_simulation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e1_network_architecture", argc, argv);
}
