// Experiment E7 (paper Section 3.1 "Protocols"): the bandwidth hierarchy of
// automotive buses. The paper quotes FlexRay at 10 Mbit/s and Ethernet at
// "100 Mbit/s and more" as the successor candidates; this experiment
// measures achievable goodput and queueing latency of CAN, FlexRay, and
// switched Ethernet under saturating load, plus the protocol efficiency
// (payload vs on-the-wire bits) per frame size.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/network/can.h"
#include "ev/network/ethernet.h"
#include "ev/network/flexray.h"
#include "ev/sim/simulator.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::network;
using ev::sim::Simulator;
using ev::sim::Time;

struct Goodput {
  double mbit_s = 0.0;
  double mean_latency_ms = 0.0;
};

Goodput saturate_can(bool observed = false) {
  Simulator sim;
  if (observed) evbench::observe(sim);
  CanBus bus(sim, "can", 500e3);
  bus.subscribe([](const Frame&, Time) {});
  // Offer more than the bus can carry; keep the queue primed.
  sim.schedule_periodic(Time{}, Time::us(200), [&] {
    if (bus.queue_depth() < 4) {
      Frame f;
      f.id = 0x100;
      f.payload_size = 8;
      (void)bus.send(f);
    }
  });
  sim.run_until(Time::s(10));
  return Goodput{static_cast<double>(bus.delivered_payload_bytes()) * 8.0 / 10.0 / 1e6,
                 bus.latency().mean() * 1e3};
}

Goodput saturate_flexray(bool observed = false) {
  Simulator sim;
  if (observed) evbench::observe(sim);
  FlexRayConfig cfg;
  // All 16 static slots in use, 32-byte payloads.
  cfg.static_payload_bytes = 32;
  for (std::uint32_t k = 0; k < 16; ++k)
    cfg.static_slots.push_back({k, static_cast<NodeId>(k), 32});
  cfg.minislot_count = 20;
  FlexRayBus bus(sim, "flexray", cfg);
  bus.subscribe([](const Frame&, Time) {});
  bus.start();
  sim.schedule_periodic(Time::us(1), Time::seconds(bus.cycle_time_s()), [&] {
    for (std::uint32_t k = 0; k < 16; ++k) {
      Frame f;
      f.id = k;
      (void)bus.send(f);
    }
  });
  sim.run_until(Time::s(10));
  return Goodput{static_cast<double>(bus.delivered_payload_bytes()) * 8.0 / 10.0 / 1e6,
                 bus.latency().mean() * 1e3};
}

Goodput saturate_ethernet(bool observed = false) {
  Simulator sim;
  if (observed) evbench::observe(sim);
  EthernetSwitch sw(sim, "eth", 2);
  sw.attach(1, 0);
  sw.add_route(0x1, EthRoute{{1}, EthClass::kBestEffort});
  sw.subscribe([](const Frame&, Time) {});
  // Full-size frames back to back.
  sim.schedule_periodic(Time{}, Time::us(120), [&] {
    if (sw.egress_depth(1) < 4) {
      Frame f;
      f.id = 0x1;
      f.source = 1;
      f.payload_size = 1500;
      (void)sw.send(f);
    }
  });
  sim.run_until(Time::s(10));
  return Goodput{static_cast<double>(sw.delivered_payload_bytes()) * 8.0 / 10.0 / 1e6,
                 sw.latency().mean() * 1e3};
}

void run_experiment() {
  std::puts("E7 — protocol bandwidth hierarchy under saturating load (10 s)\n");
  ev::util::Table table("achievable goodput",
                        {"bus", "nominal rate", "measured goodput", "efficiency",
                         "mean frame latency"});
  const Goodput can = saturate_can(/*observed=*/true);
  table.add_row({"CAN", "0.5 Mbit/s", ev::util::fmt(can.mbit_s, 3) + " Mbit/s",
                 ev::util::fmt_pct(can.mbit_s / 0.5),
                 ev::util::fmt(can.mean_latency_ms, 3) + " ms"});
  const Goodput fr = saturate_flexray(/*observed=*/true);
  table.add_row({"FlexRay", "10 Mbit/s", ev::util::fmt(fr.mbit_s, 3) + " Mbit/s",
                 ev::util::fmt_pct(fr.mbit_s / 10.0),
                 ev::util::fmt(fr.mean_latency_ms, 3) + " ms"});
  const Goodput eth = saturate_ethernet(/*observed=*/true);
  table.add_row({"Ethernet", "100 Mbit/s", ev::util::fmt(eth.mbit_s, 3) + " Mbit/s",
                 ev::util::fmt_pct(eth.mbit_s / 100.0),
                 ev::util::fmt(eth.mean_latency_ms, 3) + " ms"});
  table.print();
  evbench::set_gauge("e7.can.goodput_mbit_s", can.mbit_s);
  evbench::set_gauge("e7.flexray.goodput_mbit_s", fr.mbit_s);
  evbench::set_gauge("e7.ethernet.goodput_mbit_s", eth.mbit_s);

  ev::util::Table eff("per-frame protocol efficiency (payload bits / wire bits)",
                      {"payload bytes", "CAN", "FlexRay", "Ethernet"});
  for (std::size_t n : {1u, 8u, 16u, 64u, 256u, 1500u}) {
    auto pct = [&](double num, double den) { return ev::util::fmt_pct(num / den); };
    std::string can_cell = n <= 8 ? pct(8.0 * n, CanBus::frame_bits(n)) : "n/a";
    std::string fr_cell =
        n <= 254 ? pct(8.0 * n, FlexRayBus::frame_bits(n)) : "n/a";
    eff.add_row({std::to_string(n), can_cell, fr_cell,
                 pct(8.0 * n, EthernetSwitch::frame_bits(n))});
  }
  eff.print();
  std::puts("expected shape: goodput ordering CAN < FlexRay < Ethernet, roughly "
            "tracking the 0.5 / 10 / 100 Mbit/s nominal rates minus protocol "
            "overhead; small payloads are expensive on every protocol.\n");
}

void bm_ethernet_saturation(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(saturate_ethernet());
}
BENCHMARK(bm_ethernet_saturation)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e7_protocol_bandwidth", argc, argv);
}
