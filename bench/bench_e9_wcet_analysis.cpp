// Experiment E9 (paper Section 4.1 "Precise Timing Analysis", refs
// [30][31][32]): the precision/scalability trade-off of cache analysis.
//  (a) precise collecting analysis vs abstract must-analysis: bound
//      tightness and runtime as the program grows;
//  (b) replacement-policy predictability: LRU vs FIFO vs PLRU bounds;
//  (c) scratchpad memory: exact WCET (full predictability) vs cache
//      average performance.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "ev/timing/analysis.h"
#include "ev/timing/program.h"
#include "ev/timing/spm.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::timing;
using Clock = std::chrono::steady_clock;

Program make_program(std::size_t segments, std::uint64_t seed) {
  ev::util::Rng rng(seed);
  ProgramGenConfig cfg;
  cfg.segments = segments;
  cfg.branch_probability = 0.6;
  return generate_program(cfg, rng);
}

void run_experiment() {
  std::puts("E9 — WCET/cache analysis: precision vs scalability\n");
  const CacheConfig lru_cache = {8, 2, 64, 1, 20, Replacement::kLru};

  // --- (a) collecting vs abstract ------------------------------------------
  ev::util::Table precis("precise (collecting, [31]) vs abstract ([30]) on LRU",
                         {"segments", "paths", "abstract bound", "abstract ms",
                          "precise bound", "precise ms", "exact WCET",
                          "abstract overest."});
  for (std::size_t segments : {4u, 8u, 12u, 16u, 20u}) {
    const Program p = make_program(segments, segments);
    const auto t0 = Clock::now();
    const AnalysisResult abs = must_analysis(p, lru_cache);
    const auto t1 = Clock::now();
    const AnalysisResult coll = collecting_analysis(p, lru_cache, 1 << 18);
    const auto t2 = Clock::now();
    const std::int64_t abs_bound = wcet_bound_cycles(p, lru_cache, abs);
    const std::int64_t coll_bound = wcet_bound_cycles(p, lru_cache, coll);
    const std::int64_t exact = exact_wcet_cycles(p, lru_cache, 3e6);
    precis.add_row(
        {std::to_string(segments), ev::util::fmt(p.path_count(), 0),
         std::to_string(abs_bound),
         ev::util::fmt(std::chrono::duration<double, std::milli>(t1 - t0).count(), 2),
         std::to_string(coll_bound),
         ev::util::fmt(std::chrono::duration<double, std::milli>(t2 - t1).count(), 2),
         exact >= 0 ? std::to_string(exact) : "too many paths",
         exact > 0 ? ev::util::fmt_pct(static_cast<double>(abs_bound) / exact - 1.0)
                   : "-"});
  }
  precis.print();

  // --- (b) replacement-policy predictability ---------------------------------
  ev::util::Table policies("policy predictability (same program, 4-way cache)",
                           {"policy", "WCET bound", "observed max", "bound/observed"});
  const Program p = make_program(10, 77);
  for (Replacement policy : {Replacement::kLru, Replacement::kFifo, Replacement::kPlru}) {
    const CacheConfig cfg = {8, 4, 64, 1, 20, policy};
    const std::int64_t bound = wcet_bound_cycles(p, cfg, must_analysis(p, cfg));
    ev::util::Rng rng(99);
    const std::int64_t observed = observed_wcet_cycles(p, cfg, 300, rng);
    policies.add_row({to_string(policy), std::to_string(bound), std::to_string(observed),
                      ev::util::fmt(static_cast<double>(bound) / observed, 2)});
  }
  policies.print();

  // --- (c) scratchpad vs cache ------------------------------------------------
  ev::util::Table spm_table("scratchpad ([32]) vs LRU cache",
                            {"memory", "WCET bound", "observed max",
                             "bound tightness", "avg-case cycles"});
  {
    const CacheConfig cfg = {8, 2, 64, 1, 20, Replacement::kLru};
    const std::int64_t bound = wcet_bound_cycles(p, cfg, must_analysis(p, cfg));
    ev::util::Rng rng(7);
    const std::int64_t observed = observed_wcet_cycles(p, cfg, 300, rng);
    // Average case: mean over sampled paths approximated by re-sampling.
    ev::util::Rng rng2(8);
    double avg = 0.0;
    for (int k = 0; k < 50; ++k)
      avg += static_cast<double>(observed_wcet_cycles(p, cfg, 1, rng2)) / 50.0;
    spm_table.add_row({"LRU cache (16 lines)", std::to_string(bound),
                       std::to_string(observed),
                       ev::util::fmt(static_cast<double>(bound) / observed, 2),
                       ev::util::fmt(avg, 0)});
  }
  {
    SpmConfig cfg;
    cfg.capacity_lines = 16;
    const SpmAllocation alloc = allocate_spm(p, cfg);
    // SPM costs are static: bound == observed == exact.
    spm_table.add_row({"SPM (16 lines)", std::to_string(alloc.wcet_cycles),
                       std::to_string(alloc.wcet_cycles), "1.00",
                       ev::util::fmt(static_cast<double>(alloc.wcet_cycles), 0)});
    evbench::set_gauge("e9.spm.wcet_cycles",
                       static_cast<double>(alloc.wcet_cycles));
  }
  spm_table.print();
  std::puts("expected shape: collecting analysis is tighter but its runtime "
            "explodes with path count; LRU yields the tightest abstract bounds "
            "(FIFO/PLRU degrade via competitiveness reductions); the SPM bound "
            "is exact (predictability) though its average case is slower than "
            "a warm cache.\n");
}

void bm_must_analysis(benchmark::State& state) {
  const Program p = make_program(static_cast<std::size_t>(state.range(0)), 5);
  const CacheConfig cfg = {8, 2, 64, 1, 20, Replacement::kLru};
  for (auto _ : state) benchmark::DoNotOptimize(must_analysis(p, cfg));
}
BENCHMARK(bm_must_analysis)->Arg(8)->Arg(32);

void bm_collecting_analysis(benchmark::State& state) {
  const Program p = make_program(static_cast<std::size_t>(state.range(0)), 5);
  const CacheConfig cfg = {8, 2, 64, 1, 20, Replacement::kLru};
  for (auto _ : state)
    benchmark::DoNotOptimize(collecting_analysis(p, cfg, 1 << 18));
}
BENCHMARK(bm_collecting_analysis)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e9_wcet_analysis", argc, argv);
}
