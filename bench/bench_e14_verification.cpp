// Experiment E14 (paper Section 4.1 "Verification of distributed control
// systems", refs [28][29]): model checking transmission patterns against
// omega-regular control-performance interfaces. Regenerates the
// verified/violated matrix for representative system/requirement pairs and
// measures how checking effort grows with the requirement window — the
// scalability challenge the paper flags.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "ev/util/table.h"
#include "ev/verification/model_checker.h"
#include "harness.h"

namespace {

using namespace ev::verification;
using Clock = std::chrono::steady_clock;

void run_experiment() {
  std::puts("E14 — formal verification of control transmission patterns\n");

  ev::util::Table matrix("system model vs requirement",
                         {"system", "requirement", "verdict", "counterexample",
                          "product states"});
  struct Case {
    TransmissionSystem system;
    MonitorDfa requirement;
  };
  const Case cases[] = {
      {TransmissionSystem::time_triggered(10, 1), MonitorDfa::max_consecutive_drops(2)},
      {TransmissionSystem::time_triggered(10, 3), MonitorDfa::max_consecutive_drops(2)},
      {TransmissionSystem::time_triggered(10, 1), MonitorDfa::at_least_m_of_n(8, 10)},
      {TransmissionSystem::arbitrated(2), MonitorDfa::max_consecutive_drops(2)},
      {TransmissionSystem::arbitrated(4), MonitorDfa::max_consecutive_drops(2)},
      {TransmissionSystem::arbitrated(2), MonitorDfa::at_least_m_of_n(4, 8)},
      {TransmissionSystem::unbounded_drops(), MonitorDfa::max_consecutive_drops(4)},
  };
  int verified = 0;
  for (const Case& c : cases) {
    const VerificationResult r = verify(c.system, c.requirement);
    if (r.verified) ++verified;
    matrix.add_row({c.system.description(), c.requirement.description(),
                    r.verified ? "VERIFIED" : "violated",
                    r.verified ? "-" : std::to_string(r.counterexample.size()) + " slots",
                    std::to_string(r.product_states)});
  }
  matrix.print();
  evbench::set_gauge("e14.matrix.verified_cases", static_cast<double>(verified));

  ev::util::Table scaling("checking effort vs requirement window (arbitrated system, "
                          "burst 3)",
                          {"window n", "monitor states", "product states",
                           "transitions", "time"});
  const auto sys = TransmissionSystem::arbitrated(3);
  for (std::size_t n : {6u, 10u, 14u, 18u}) {
    const MonitorDfa req = MonitorDfa::at_least_m_of_n(n / 2, n);
    const auto t0 = Clock::now();
    const VerificationResult r = verify(sys, req);
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    // Overwritten per window; the snapshot keeps the largest (n = 18).
    evbench::set_gauge("e14.product_states", static_cast<double>(r.product_states));
    scaling.add_row({std::to_string(n), std::to_string(req.state_count()),
                     std::to_string(r.product_states),
                     std::to_string(r.transitions_explored),
                     ev::util::fmt(us / 1000.0, 3) + " ms"});
  }
  scaling.print();
  std::puts("expected shape: runtime and explored states grow exponentially "
            "with the requirement window (monitor states = 2^(n-1)+1) — the "
            "versatility-vs-scalability trade the paper names as the open "
            "challenge.\n");
}

void bm_verify_window(benchmark::State& state) {
  const auto sys = TransmissionSystem::arbitrated(3);
  const MonitorDfa req =
      MonitorDfa::at_least_m_of_n(static_cast<std::size_t>(state.range(0)) / 2,
                                  static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(verify(sys, req));
}
BENCHMARK(bm_verify_window)->Arg(8)->Arg(16)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e14_verification", argc, argv);
}
