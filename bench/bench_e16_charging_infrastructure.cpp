// Experiment E16 (paper Section 2 "Information Systems"): fleet-wide
// charging coordination and V2G. The paper: information on available
// charging stations "can be further qualified by taking into account the
// locations, energy-consumption and destinations of all vehicles, as well
// as the number and location of charging stations". Measures queue waiting,
// detours, and strandings for the uncoordinated vs coordinated policy as
// fleet pressure rises, plus the V2G energy the fleet can feed back.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/infra/charging_network.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::infra;

void run_experiment() {
  std::puts("E16 — charging infrastructure: nearest-station vs coordinated "
            "assignment (12 h city scenario)\n");

  ev::util::Table table("fleet pressure sweep (6 stations, 2 slots each)",
                        {"vehicles", "policy", "mean wait", "max wait",
                         "mean detour", "stranded", "station util"});
  for (std::size_t vehicles : {40u, 80u, 120u}) {
    for (AssignmentPolicy policy :
         {AssignmentPolicy::kNearestStation, AssignmentPolicy::kCoordinated}) {
      FleetConfig cfg;
      cfg.vehicle_count = vehicles;
      cfg.seed = 21;
      ChargingNetwork net(cfg);
      const FleetReport r = net.run(policy);
      table.add_row({std::to_string(vehicles), to_string(policy),
                     ev::util::fmt(r.mean_wait_min, 1) + " min",
                     ev::util::fmt(r.max_wait_min, 1) + " min",
                     ev::util::fmt(r.mean_detour_km, 2) + " km",
                     std::to_string(r.stranded),
                     ev::util::fmt_pct(r.station_utilization)});
    }
  }
  table.print();

  ev::util::Table v2g("V2G: grid request served by the plugged fleet",
                      {"grid request", "energy fed back (12 h)", "stranded"});
  for (double request_kw : {0.0, 20.0, 50.0, 100.0}) {
    FleetConfig cfg;
    cfg.vehicle_count = 80;
    cfg.seed = 23;
    ChargingNetwork net(cfg);
    const FleetReport r = net.run(AssignmentPolicy::kCoordinated, request_kw);
    // Overwritten per request; the snapshot keeps the 100 kW point.
    evbench::set_gauge("e16.v2g_energy_kwh", r.v2g_energy_kwh);
    v2g.add_row({ev::util::fmt(request_kw, 0) + " kW",
                 ev::util::fmt(r.v2g_energy_kwh, 1) + " kWh",
                 std::to_string(r.stranded)});
  }
  v2g.print();
  std::puts("expected shape: coordination cuts queue waiting sharply once the "
            "infrastructure saturates, at a modest detour cost; V2G scales "
            "with the request while the SoC reserve floor protects the "
            "drivers' range.\n");
}

void bm_fleet_simulation(benchmark::State& state) {
  FleetConfig cfg;
  cfg.vehicle_count = static_cast<std::size_t>(state.range(0));
  cfg.sim_hours = 2.0;
  for (auto _ : state) {
    ChargingNetwork net(cfg);
    benchmark::DoNotOptimize(net.run(AssignmentPolicy::kCoordinated));
  }
}
BENCHMARK(bm_fleet_simulation)->Arg(40)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e16_charging_infrastructure", argc, argv);
}
