// Experiment E13 (paper Section 3.2 "Multi-core"): consolidation capacity
// of multi-core ECUs. How many software functions can one ECU host as the
// core count grows, under time-triggered partitioned placement with shared-
// resource interference — and where interference erodes the scaling.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/core/architecture.h"
#include "ev/ecu/multicore.h"
#include "ev/util/rng.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::ecu;

std::vector<HostedFunction> function_pool(std::size_t n) {
  // Mixed workload shaped like the reference EV network: periods 5..200 ms,
  // utilizations 2..20%.
  std::vector<HostedFunction> fns;
  const std::int64_t periods[] = {5000, 10000, 20000, 50000, 100000, 200000};
  ev::util::Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    HostedFunction f;
    f.name = "fn" + std::to_string(i);
    f.period_us = periods[rng.uniform_int(0, 5)];
    f.wcet_us = static_cast<std::int64_t>(
        static_cast<double>(f.period_us) * rng.uniform(0.02, 0.2));
    fns.push_back(std::move(f));
  }
  return fns;
}

void run_experiment() {
  std::puts("E13 — functions hosted per ECU vs core count and interference\n");

  const auto pool = function_pool(256);
  ev::util::Table table("hosted-function capacity (80% per-core bound)",
                        {"cores", "no interference", "8%/core interference",
                         "25%/core interference", "scaling vs 1 core (8%)"});
  std::size_t base_8 = 0;
  for (std::size_t cores : {1u, 2u, 4u, 8u, 16u}) {
    auto capacity_with = [&](double factor) {
      MulticoreConfig cfg;
      cfg.core_count = cores;
      cfg.interference_factor = factor;
      return MulticoreEcu(cfg).capacity(pool);
    };
    const std::size_t none = capacity_with(0.0);
    const std::size_t mid = capacity_with(0.08);
    const std::size_t high = capacity_with(0.25);
    if (cores == 1) base_8 = mid;
    if (cores == 8)
      evbench::set_gauge("e13.capacity.8core_8pct", static_cast<double>(mid));
    table.add_row({std::to_string(cores), std::to_string(none), std::to_string(mid),
                   std::to_string(high),
                   ev::util::fmt(static_cast<double>(mid) / static_cast<double>(base_8), 2) + "x"});
  }
  table.print();

  // ECU count needed for the reference network at each core count.
  ev::util::Table ecus("ECUs needed for the reference EV network (scale 4)",
                       {"cores per ECU", "ECUs needed"});
  const auto net = ev::core::reference_function_network(4);
  std::vector<HostedFunction> net_fns;
  for (const auto& f : net.functions)
    net_fns.push_back(HostedFunction{f.name, f.period_us, f.wcet_us});
  for (std::size_t cores : {1u, 2u, 4u, 8u}) {
    MulticoreConfig cfg;
    cfg.core_count = cores;
    std::size_t ecu_count = 0;
    std::size_t placed_total = 0;
    std::vector<HostedFunction> remaining = net_fns;
    while (!remaining.empty() && ecu_count < 200) {
      MulticoreEcu ecu(cfg);
      const PlacementResult r = ecu.place(remaining);
      if (r.placed_count == 0) break;
      std::vector<HostedFunction> next;
      for (std::size_t i = 0; i < remaining.size(); ++i)
        if (r.core_of[i] < 0) next.push_back(remaining[i]);
      placed_total += r.placed_count;
      remaining = std::move(next);
      ++ecu_count;
    }
    (void)placed_total;
    // Overwritten per core count; the snapshot keeps the 8-core value.
    evbench::set_gauge("e13.reference_net.ecus_needed",
                       static_cast<double>(ecu_count));
    ecus.add_row({std::to_string(cores), std::to_string(ecu_count)});
  }
  ecus.print();
  std::puts("expected shape: capacity grows with the core count until the "
            "interference inflation eats the gain — the motivation for "
            "predictable multi-core OS design the paper cites ([19],[20]).\n");
}

void bm_placement(benchmark::State& state) {
  const auto pool = function_pool(static_cast<std::size_t>(state.range(0)));
  MulticoreConfig cfg;
  cfg.core_count = 8;
  const MulticoreEcu ecu(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(ecu.place(pool));
}
BENCHMARK(bm_placement)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e13_multicore", argc, argv);
}
