// Experiment E12 (paper Section 3.2 "FPGA", refs [25][26]): fault recovery
// strategies for safety-critical compute. FPGA partial reconfiguration
// (recover the faulty module alone while a redundant mode covers) is
// compared against full-device reconfiguration, spare-ECU failover, and
// dual hot-standby hardware: per-fault recovery time, mission availability,
// collateral (isolation) downtime, and hardware overhead.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/ecu/fpga.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::ecu;

void run_experiment() {
  std::puts("E12 — fault recovery: FPGA partial reconfiguration vs alternatives\n");

  const FpgaConfig cfg;
  ev::util::Table rec("per-fault recovery time",
                      {"strategy", "recovery time", "other modules affected"});
  for (RecoveryStrategy s :
       {RecoveryStrategy::kPartialReconfiguration, RecoveryStrategy::kFullReconfiguration,
        RecoveryStrategy::kEcuFailover, RecoveryStrategy::kDualHardware}) {
    const bool collateral = s == RecoveryStrategy::kFullReconfiguration ||
                            s == RecoveryStrategy::kEcuFailover;
    rec.add_row({to_string(s), ev::util::fmt(recovery_time_s(cfg, s) * 1e3, 3) + " ms",
                 collateral ? "yes (whole device stops)" : "no (isolated)"});
  }
  rec.print();

  ev::util::Table mission("1000 h mission, 2 transient faults/h (same fault trace)",
                          {"strategy", "faults", "function downtime",
                           "collateral downtime", "availability",
                           "hardware overhead"});
  const double mission_s = 1000.0 * 3600.0;
  for (RecoveryStrategy s :
       {RecoveryStrategy::kPartialReconfiguration, RecoveryStrategy::kFullReconfiguration,
        RecoveryStrategy::kEcuFailover, RecoveryStrategy::kDualHardware}) {
    ev::util::Rng rng(123);  // identical fault trace for every strategy
    const RecoveryReport r = simulate_mission(cfg, s, mission_s, rng);
    if (s == RecoveryStrategy::kPartialReconfiguration) {
      evbench::set_gauge("e12.partial_reconfig.availability", r.availability);
      evbench::set_gauge("e12.partial_reconfig.downtime_s", r.downtime_s);
    }
    mission.add_row({to_string(s), std::to_string(r.faults),
                     ev::util::fmt(r.downtime_s, 2) + " s",
                     ev::util::fmt(r.system_downtime_s, 2) + " s",
                     ev::util::fmt(r.availability * 100.0, 5) + " %",
                     ev::util::fmt_pct(r.hardware_overhead)});
  }
  mission.print();
  std::puts("expected shape: partial reconfiguration recovers in roughly the "
            "region-bitstream load time — orders of magnitude below an ECU "
            "reboot — with no collateral outage and a fraction of the dual-"
            "hardware cost.\n");
}

void bm_mission_simulation(benchmark::State& state) {
  const FpgaConfig cfg;
  for (auto _ : state) {
    ev::util::Rng rng(5);
    benchmark::DoNotOptimize(simulate_mission(
        cfg, RecoveryStrategy::kPartialReconfiguration, 1000.0 * 3600.0, rng));
  }
}
BENCHMARK(bm_mission_simulation);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e12_fpga_recovery", argc, argv);
}
