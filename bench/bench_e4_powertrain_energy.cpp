// Experiment E4 (paper Fig. 4 + Section 2 "Electric Powertrain" /
// "Drive-by-wire"): energy flows of the full electric powertrain across
// drive cycles, and the range impact of regenerative braking — the paper's
// claim that recuperation "is essential to extend the driving range".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/powertrain/drive_cycle.h"
#include "ev/powertrain/simulation.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::powertrain;

PowertrainConfig make_config(bool regen) {
  PowertrainConfig cfg;
  cfg.regen.enabled = regen;
  cfg.seed = 11;
  return cfg;
}

void run_experiment() {
  std::puts("E4 — powertrain energy flows (Fig. 4) and regenerative braking\n");

  // --- Energy flow breakdown per cycle, regen on ------------------------------
  ev::util::Table flows("energy ledger per cycle (regeneration on)",
                        {"cycle", "distance", "drawn", "recuperated", "motor loss",
                         "friction loss", "aux", "consumption"});
  for (const DriveCycle& cycle :
       {DriveCycle::urban(), DriveCycle::suburban(), DriveCycle::highway()}) {
    PowertrainSimulation sim(make_config(true));
    const CycleResult r = sim.run_cycle(cycle);
    flows.add_row({cycle.name(), ev::util::fmt(r.distance_km, 2) + " km",
                   ev::util::fmt(r.battery_energy_out_wh, 0) + " Wh",
                   ev::util::fmt(r.regen_recovered_wh, 0) + " Wh",
                   ev::util::fmt(r.motor_loss_wh, 0) + " Wh",
                   ev::util::fmt(r.friction_brake_loss_wh, 0) + " Wh",
                   ev::util::fmt(r.aux_energy_wh, 0) + " Wh",
                   ev::util::fmt(r.consumption_wh_km, 1) + " Wh/km"});
  }
  flows.print();

  // --- Regeneration on/off: consumption and range -----------------------------
  ev::util::Table regen("regeneration impact per cycle",
                        {"cycle", "consumption regen-off", "consumption regen-on",
                         "saving", "range regen-off", "range regen-on",
                         "range gain"});
  for (const char* name : {"urban", "suburban", "highway"}) {
    const DriveCycle cycle = std::string(name) == "urban"
                                 ? DriveCycle::urban()
                                 : (std::string(name) == "suburban"
                                        ? DriveCycle::suburban()
                                        : DriveCycle::highway());
    PowertrainSimulation off_sim(make_config(false));
    PowertrainSimulation on_sim(make_config(true));
    const CycleResult off = off_sim.run_cycle(cycle);
    const CycleResult on = on_sim.run_cycle(cycle);
    const double saving = 1.0 - on.consumption_wh_km / off.consumption_wh_km;

    PowertrainSimulation range_off(make_config(false));
    PowertrainSimulation range_on(make_config(true));
    const double km_off = range_off.measure_range_km(cycle);
    const double km_on = range_on.measure_range_km(cycle);
    regen.add_row({name, ev::util::fmt(off.consumption_wh_km, 1) + " Wh/km",
                   ev::util::fmt(on.consumption_wh_km, 1) + " Wh/km",
                   ev::util::fmt_pct(saving), ev::util::fmt(km_off, 1) + " km",
                   ev::util::fmt(km_on, 1) + " km",
                   ev::util::fmt_pct(km_on / km_off - 1.0)});
  }
  regen.print();
  std::puts("expected shape: double-digit percentage range gain on stop-and-go "
            "urban driving, small gain on the highway (little braking to "
            "recuperate).\n");

  // --- DC-DC conversion losses (the 12 V rail of Fig. 4) ---------------------
  PowertrainSimulation sim(make_config(true));
  const CycleResult r = sim.run_cycle(DriveCycle::urban());
  evbench::set_gauge("e4.urban.consumption_wh_km", r.consumption_wh_km);
  evbench::set_gauge("e4.urban.regen_recovered_wh", r.regen_recovered_wh);
  std::printf("12 V auxiliary rail over urban cycle: %.0f Wh drawn from HV "
              "(load %.0f W through the DC-DC converter)\n\n",
              r.aux_energy_wh, sim.config().aux_power_w);
}

void bm_powertrain_step(benchmark::State& state) {
  PowertrainSimulation sim(make_config(true));
  for (auto _ : state) benchmark::DoNotOptimize(sim.step(15.0));
}
BENCHMARK(bm_powertrain_step)->Unit(benchmark::kMicrosecond);

void bm_urban_cycle(benchmark::State& state) {
  const DriveCycle cycle = DriveCycle::urban();
  for (auto _ : state) {
    PowertrainSimulation sim(make_config(true));
    benchmark::DoNotOptimize(sim.run_cycle(cycle));
  }
}
BENCHMARK(bm_urban_cycle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e4_powertrain_energy", argc, argv);
}
