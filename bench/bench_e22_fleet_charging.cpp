// Experiment E22: fault-tolerant fleet charging. The robustness contract of
// the OCPP-style central system (src/fleet) is exercised over a seed ladder
// in three campaigns — clean, heartbeat-loss (lossy channel + comms
// blackout), and grid-fault (capacity drop + feeder partition) — and the
// invariants are checked on every run: the summed station draw never
// exceeds the live grid capacity (ThrottleAlive reservations make silence
// safe), no authorized session is dropped uncleanly (sheds suspend, never
// strand), and dead-lettered accounting messages are journaled and
// redelivered until billing converges. Every run is a pure function of
// (spec, seed): reports are byte-identical across reruns and worker counts,
// so the exported snapshot carries no wall-clock gauges at all — the
// fleet-determinism CI job byte-compares it across --jobs values.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ev/config/fleet.h"
#include "ev/fleet/retry.h"
#include "ev/fleet/simulation.h"
#include "ev/util/rng.h"
#include "ev/util/stats.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::config::FleetSpec;
using ev::config::GridFaultKindSpec;
using ev::config::GridFaultSpec;
using ev::fleet::FleetResult;

constexpr int kSeeds = 6;
constexpr std::uint64_t kFirstSeed = 1;

FleetSpec base_spec() {
  FleetSpec spec;
  spec.name = "e22-fleet";
  spec.stations = 48;
  spec.feeders = 4;
  spec.sim_hours = 1.0;
  spec.grid_capacity_kw = 250.0;  // 48 x 32 A x 400 V = 614 kW demand ceiling
  spec.arrival_rate_per_station_per_h = 1.5;
  spec.session_energy_min_kwh = 3.0;
  spec.session_energy_max_kwh = 10.0;
  spec.rogue_stations = 1;
  return spec;
}

FleetSpec heartbeat_loss_spec() {
  FleetSpec spec = base_spec();
  spec.name = "e22-heartbeat-loss";
  spec.msg_loss_probability = 0.05;
  // A third of the fleet loses its control channel for 10 minutes.
  spec.grid_faults.push_back(
      GridFaultSpec{1200.0, GridFaultKindSpec::kCommsBlackout, 0, 16.0, 600.0});
  return spec;
}

FleetSpec grid_fault_spec() {
  FleetSpec spec = base_spec();
  spec.name = "e22-grid-fault";
  spec.grid_faults.push_back(
      GridFaultSpec{1200.0, GridFaultKindSpec::kCapacityDrop, 0, 0.85, 600.0});
  spec.grid_faults.push_back(
      GridFaultSpec{2400.0, GridFaultKindSpec::kFeederPartition, 1, 0.0, 300.0});
  return spec;
}

/// Seed-ladder aggregate of one campaign variant.
struct CampaignAggregate {
  std::uint64_t violations = 0;
  std::uint64_t completed = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t dead_letters = 0;
  std::uint64_t redelivered = 0;
  std::uint64_t journal_residue = 0;
  std::uint64_t shed_suspensions = 0;
  std::uint64_t open_at_end = 0;
  double energy_kwh = 0.0;
  double billed_kwh = 0.0;
  ev::util::RunningStats latency_p99_s;
  ev::util::RunningStats latency_max_s;
  ev::util::RunningStats sessions_per_hour;
  std::uint32_t digest_xor = 0;
};

CampaignAggregate run_campaign(const FleetSpec& base) {
  CampaignAggregate agg;
  // Each rung is an independent fleet on a private worker pool; the rungs
  // themselves fan out over the bench's job budget and fold in seed order.
  evbench::run_seeded_campaign(
      kFirstSeed, 1, kSeeds, evbench::default_jobs(),
      [&](std::uint64_t seed, int) {
        FleetSpec spec = base;
        spec.seed = seed;
        return ev::fleet::run_fleet(spec, 1);
      },
      [&](FleetResult result, std::uint64_t, int) {
        agg.violations += result.grid_violations;
        agg.completed += result.stations.sessions_completed;
        agg.arrivals += result.stations.arrivals;
        agg.lease_expiries += result.stations.lease_expiries;
        agg.reconnects += result.stations.reconnects;
        agg.dead_letters += result.messages_dead_lettered;
        agg.redelivered += result.stations.redelivered;
        agg.journal_residue += result.journal_pending_end;
        agg.shed_suspensions += result.central.shed_suspensions;
        agg.open_at_end += result.open_transactions_end;
        agg.energy_kwh += result.stations.energy_delivered_kwh;
        agg.billed_kwh += result.central.billed_kwh;
        agg.latency_p99_s.add(result.central.decision_latency_s.percentile(99.0));
        agg.latency_max_s.add(result.central.decision_latency_s.max());
        agg.sessions_per_hour.add(
            static_cast<double>(result.stations.sessions_completed) /
            result.sim_hours);
        agg.digest_xor ^= result.digest;
      });
  return agg;
}

void export_campaign_gauges(const std::string& prefix, const CampaignAggregate& agg) {
  evbench::set_gauge(prefix + ".grid_violations", static_cast<double>(agg.violations));
  evbench::set_gauge(prefix + ".sessions_completed", static_cast<double>(agg.completed));
  evbench::set_gauge(prefix + ".lease_expiries",
                     static_cast<double>(agg.lease_expiries));
  evbench::set_gauge(prefix + ".dead_letters", static_cast<double>(agg.dead_letters));
  evbench::set_gauge(prefix + ".journal_residue",
                     static_cast<double>(agg.journal_residue));
  evbench::set_gauge(prefix + ".latency_p99_s_mean", agg.latency_p99_s.mean());
  evbench::set_gauge(prefix + ".digest_xor", static_cast<double>(agg.digest_xor));
}

void run_experiment() {
  std::puts("E22 — fault-tolerant fleet charging: 48 stations / 250 kW grid, "
            "6-seed ladder,\nclean vs heartbeat-loss vs grid-fault campaigns\n");

  const CampaignAggregate clean = run_campaign(base_spec());
  const CampaignAggregate lossy = run_campaign(heartbeat_loss_spec());
  const CampaignAggregate faulted = run_campaign(grid_fault_spec());

  ev::util::Table table(
      "fleet campaigns (totals over " + std::to_string(kSeeds) + " seeds)",
      {"campaign", "done/arrived", "grid viol", "lease exp", "dead ltr",
       "redeliv", "p99 lat", "sess/h"});
  const auto row = [&](const char* name, const CampaignAggregate& agg) {
    table.add_row({name,
                   std::to_string(agg.completed) + "/" + std::to_string(agg.arrivals),
                   std::to_string(agg.violations),
                   std::to_string(agg.lease_expiries),
                   std::to_string(agg.dead_letters),
                   std::to_string(agg.redelivered),
                   ev::util::fmt(agg.latency_p99_s.mean(), 1) + " s",
                   ev::util::fmt(agg.sessions_per_hour.mean(), 1)});
  };
  row("clean", clean);
  row("heartbeat-loss", lossy);
  row("grid-fault", faulted);
  table.print();

  // Robustness contract checks — a regression here is a correctness bug,
  // not a slowdown, so say so loudly and export it for the CI gate.
  bool ok = true;
  const auto check = [&](bool condition, const char* what) {
    if (!condition) {
      std::printf("INVARIANT VIOLATED: %s\n", what);
      ok = false;
    }
  };
  check(clean.violations + lossy.violations + faulted.violations == 0,
        "total draw exceeded grid capacity");
  check(lossy.lease_expiries > 0, "blackout produced no lease expiries");
  check(lossy.reconnects == lossy.lease_expiries,
        "some throttled station never reconnected");
  check(lossy.dead_letters > 0, "lossy campaign produced no dead letters");
  check(lossy.journal_residue + faulted.journal_residue == 0,
        "dead-letter journal never drained");
  check(faulted.shed_suspensions > 0, "capacity drop never shed load");
  check(clean.completed > 0 && lossy.completed > 0 && faulted.completed > 0,
        "a campaign completed zero sessions");
  check(clean.billed_kwh <= clean.energy_kwh + 1e-9 &&
            lossy.billed_kwh <= lossy.energy_kwh + 1e-9 &&
            faulted.billed_kwh <= faulted.energy_kwh + 1e-9,
        "billed more energy than was delivered");

  export_campaign_gauges("e22.clean", clean);
  export_campaign_gauges("e22.heartbeat_loss", lossy);
  export_campaign_gauges("e22.grid_fault", faulted);
  evbench::set_gauge("e22.invariants_ok", ok ? 1.0 : 0.0);

  std::printf("\nrobustness invariants: %s\n", ok ? "all hold" : "VIOLATED");
  std::puts("expected shape: the lossy campaign trades sessions/hour for lease "
            "expiries and dead-letter traffic but never violates the grid "
            "limit; the grid-fault campaign sheds newest sessions during the "
            "drop and resumes them afterwards — open transactions survive "
            "every fault.\n");
}

void bm_fleet_run(benchmark::State& state) {
  // One full 15-minute fleet run per iteration (serial inner loop).
  FleetSpec spec = base_spec();
  spec.stations = 24;
  spec.sim_hours = 0.25;
  for (auto _ : state) {
    spec.seed += 1;  // defeat any caching while staying deterministic in shape
    benchmark::DoNotOptimize(ev::fleet::run_fleet(spec, 1));
  }
}
BENCHMARK(bm_fleet_run)->Unit(benchmark::kMillisecond);

void bm_fleet_tick_parallel(benchmark::State& state) {
  // Same run fanned over worker threads: the station-advance scaling path.
  FleetSpec spec = base_spec();
  spec.stations = 96;
  spec.sim_hours = 0.1;
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    spec.seed += 1;
    benchmark::DoNotOptimize(ev::fleet::run_fleet(spec, jobs));
  }
}
BENCHMARK(bm_fleet_tick_parallel)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void bm_retry_pump(benchmark::State& state) {
  // The per-tick cost of pumping a loaded retry queue that never delivers.
  ev::fleet::RetryPolicy policy;
  policy.max_attempts = 1000000;
  ev::util::Rng rng(9);
  ev::fleet::RetryQueue queue(policy);
  ev::fleet::Message msg;
  for (int i = 0; i < 64; ++i) queue.enqueue(msg, 0.0);
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    queue.pump(now, rng, [](const ev::fleet::Message&) { return false; },
               [](const ev::fleet::Message&) {});
    benchmark::DoNotOptimize(queue.pending());
  }
}
BENCHMARK(bm_retry_pump)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e22_fleet_charging", argc, argv);
}
