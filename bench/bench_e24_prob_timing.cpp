// Experiment E24: probabilistic fault-aware CAN timing analysis
// cross-validated against fault-injection campaigns. `evsys check --prob`
// turns a scenario's bus.error_rate / bus.error_prob fault specs into
// per-frame deadline-miss probabilities via the Broster-style R(k) ladder
// (prob.h). Those are analytic upper bounds, so the same contract E19
// enforces for deterministic bounds must hold one level up: the observed
// per-frame miss *frequency* from seeded fault-injection campaigns may
// never exceed the analytic miss *probability* (within the Hoeffding
// confidence tolerance of the sample size). Each armed CAN bus runs as a
// standalone testbed — every frame the analyzer models is sent on its
// period, the seeded CanErrorModel destroys transmissions, and every
// delivery later than one period counts as a miss. Any frequency above
// bound + tolerance is a soundness violation and fails the binary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ev/analysis/analyzer.h"
#include "ev/analysis/prob.h"
#include "ev/config/scenario.h"
#include "ev/network/can.h"
#include "ev/sim/simulator.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::analysis::FrameMissBound;
using ev::analysis::ProbOutcome;
using ev::analysis::VehicleModel;
using ev::config::ScenarioSpec;

// Stress point: 125 kbit/s CAN at doubled traffic keeps transmissions long
// and the busy periods tight, so the Poisson channel (safety) lands k_max
// in the low single digits — analytic miss probabilities from 1e-6 up to
// ~0.85 — while the Bernoulli channel (comfort) stays in the rare-miss
// regime. Error-inflated utilization stays well below 1 on both buses, so
// the testbed queues are stable and every sent frame is eventually
// delivered.
constexpr double kBitRateBps = 125e3;
constexpr double kLoadScale = 2.0;
constexpr double kPoissonRatePerS = 300.0;
constexpr double kBernoulliProb = 0.02;

constexpr std::uint64_t kFirstSeed = 1;
constexpr int kSeeds = 20;
constexpr double kSendSeconds = 30.0;   // send window per seed per bus
constexpr double kDrainSeconds = 5.0;   // backlog drain before counting

ScenarioSpec scenario() {
  ScenarioSpec spec;
  spec.name = "e24-stress";
  spec.network.can_bit_rate = kBitRateBps;
  spec.network.load_scale = kLoadScale;
  spec.subsystems.faults = true;
  spec.faults.push_back({0.0, ev::config::FaultKind::kBusErrorRate, "safety_can",
                         kPoissonRatePerS});
  spec.faults.push_back({0.0, ev::config::FaultKind::kBusErrorProb, "comfort_can",
                         kBernoulliProb});
  return spec;
}

/// Per-frame tally of one testbed run.
struct FrameTally {
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t missed = 0;  // delivered later than one period after queuing
};

/// One fault-injection run of bus \p bus_idx of \p model under \p seed:
/// every analyzer-modelled frame is sent on its period from t = 0, the
/// seeded error model destroys transmissions, and deliveries later than one
/// period count as misses. Pure function of its arguments (private
/// simulator, no shared state) — safe as a parallel campaign worker.
std::vector<FrameTally> run_testbed(const VehicleModel& model, std::size_t bus_idx,
                                    const ev::analysis::BusErrorModel& error_model,
                                    std::uint64_t seed) {
  const ev::analysis::BusModel& bus_model = model.buses[bus_idx];
  ev::sim::Simulator sim;
  ev::network::CanBus bus(sim, bus_model.scenario_name, bus_model.bit_rate_bps);

  ev::network::CanErrorModel armed;
  armed.poisson_rate_per_s = error_model.poisson_rate_per_s;
  armed.per_attempt_prob = error_model.per_attempt_prob;
  armed.seed = seed ^ (0x9e3779b97f4a7c15ULL * (bus_idx + 1));
  bus.arm_error_model(armed);

  // The frames the analyzer models on this bus, in model order (CAN ids are
  // unique per bus, so deliveries map back by id).
  std::vector<std::size_t> frames;
  std::map<std::uint32_t, std::size_t> slot_of_id;
  for (std::size_t f = 0; f < model.frames.size(); ++f)
    if (model.frames[f].bus == bus_idx && model.frames[f].payload_bytes <= 8) {
      slot_of_id[model.frames[f].id] = frames.size();
      frames.push_back(f);
    }

  std::vector<FrameTally> tallies(frames.size());
  bus.subscribe([&](const ev::network::Frame& frame, ev::sim::Time delivered) {
    const auto it = slot_of_id.find(frame.id);
    if (it == slot_of_id.end()) return;
    FrameTally& tally = tallies[it->second];
    ++tally.delivered;
    const double latency_s = (delivered - frame.created).to_seconds();
    if (latency_s > model.frames[frames[it->second]].period_s + 1e-12) ++tally.missed;
  });

  const ev::sim::Time send_until = ev::sim::Time::seconds(kSendSeconds);
  for (std::size_t s = 0; s < frames.size(); ++s) {
    const ev::analysis::FrameModel& frame = model.frames[frames[s]];
    const ev::sim::Time period = ev::sim::Time::seconds(frame.period_s);
    // All frames released together at t = 0: the synchronous critical
    // instant, the worst phasing the analysis covers.
    sim.schedule_periodic(ev::sim::Time{}, period, [&, s] {
      if (sim.now() > send_until) return;
      ev::network::Frame tx;
      tx.id = model.frames[frames[s]].id;
      tx.payload_size = model.frames[frames[s]].payload_bytes;
      if (bus.send(tx)) ++tallies[s].sent;
    });
  }
  sim.run_until(send_until + ev::sim::Time::seconds(kDrainSeconds));
  return tallies;
}

/// Aggregated campaign evidence for one frame of one armed bus.
struct CrossCheck {
  std::size_t bus = 0;
  std::size_t frame = 0;        // index into VehicleModel::frames
  double analytic = 0.0;        // P(miss) upper bound from the analyzer
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t missed = 0;
};

double wall_seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Two-sided confidence slack on an observed frequency of \p n samples:
/// Hoeffding with failure mass 1e-9 per comparison. An observation beyond
/// analytic + tolerance is (overwhelmingly) a real soundness violation, not
/// sampling noise.
double hoeffding_tolerance(std::size_t n) {
  if (n == 0) return 1.0;
  return std::sqrt(std::log(1e9) / (2.0 * static_cast<double>(n)));
}

/// Writes the deterministic cross-validation record (analytic bounds and
/// campaign tallies — no wall times) to E24_crossval.json next to the bench
/// metric snapshots. CI byte-compares this file between --jobs values.
bool write_crossval_json(const VehicleModel& model, const std::vector<CrossCheck>& checks,
                         std::string* path_out) {
  const char* dir = std::getenv("EVSYS_BENCH_METRICS_DIR");
  const std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
      "E24_crossval.json";
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"experiment\": \"e24_prob_timing\",\n  \"seeds\": " << kSeeds
      << ",\n  \"frames\": [\n";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const CrossCheck& c = checks[i];
    const ev::analysis::FrameModel& frame = model.frames[c.frame];
    char id_hex[16];
    std::snprintf(id_hex, sizeof id_hex, "0x%x", frame.id);
    const double observed =
        c.sent == 0 ? 0.0
                    : static_cast<double>(c.missed) / static_cast<double>(c.sent);
    out << "    {\"bus\": \"" << model.buses[c.bus].scenario_name << "\", \"id\": \""
        << id_hex << "\", \"analytic\": " << ev::config::format_double(c.analytic)
        << ", \"sent\": " << c.sent << ", \"delivered\": " << c.delivered
        << ", \"missed\": " << c.missed
        << ", \"observed\": " << ev::config::format_double(observed) << "}"
        << (i + 1 < checks.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (path_out != nullptr) *path_out = path;
  return static_cast<bool>(out);
}

int run_experiment() {
  std::puts("E24 — probabilistic CAN timing analysis vs fault-injection "
            "campaigns: every analytic deadline-miss probability must "
            "dominate the observed miss frequency\n");

  const ScenarioSpec spec = scenario();
  const VehicleModel model = ev::analysis::extract_model(spec);

  ev::analysis::ProbabilisticCanAnalyzer analyzer(model);
  double analysis_wall_s = wall_seconds(
      [&spec] { (void)ev::analysis::analyze_probabilistic_scenario(spec); });
  for (int i = 0; i < 2; ++i)
    analysis_wall_s = std::min(analysis_wall_s, wall_seconds([&spec] {
      (void)ev::analysis::analyze_probabilistic_scenario(spec);
    }));

  // Analytic side: the per-frame miss bounds of every armed CAN bus.
  std::vector<std::size_t> armed_buses;
  std::vector<CrossCheck> checks;
  std::map<std::size_t, std::size_t> check_of_frame;
  for (std::size_t b = 0; b < model.buses.size(); ++b) {
    const ProbOutcome& outcome = analyzer.bus_outcome(b);
    if (!outcome.model.armed() ||
        model.buses[b].protocol != ev::analysis::Protocol::kCan)
      continue;
    armed_buses.push_back(b);
    for (const FrameMissBound& fmb : outcome.frames) {
      check_of_frame[fmb.frame] = checks.size();
      checks.push_back(CrossCheck{b, fmb.frame, fmb.miss_probability, 0, 0, 0});
    }
  }

  // Simulated side: the seed-ladder campaign, one testbed per armed bus per
  // seed, on the shared worker pool. Workers are pure; the fold accumulates
  // in seed order, so the tallies (and the exported cross-validation JSON)
  // are byte-identical for any EVSYS_BENCH_JOBS value.
  const double campaign_wall_s = wall_seconds([&] {
    evbench::run_seeded_campaign(
        kFirstSeed, 1, kSeeds, evbench::default_jobs(),
        [&](std::uint64_t seed, int) {
          std::vector<std::vector<FrameTally>> per_bus;
          per_bus.reserve(armed_buses.size());
          for (const std::size_t b : armed_buses)
            per_bus.push_back(
                run_testbed(model, b, analyzer.error_models()[b], seed));
          return per_bus;
        },
        [&](std::vector<std::vector<FrameTally>> per_bus, std::uint64_t, int) {
          for (std::size_t i = 0; i < armed_buses.size(); ++i) {
            const ProbOutcome& outcome = analyzer.bus_outcome(armed_buses[i]);
            for (std::size_t s = 0; s < outcome.frames.size(); ++s) {
              CrossCheck& check = checks[check_of_frame.at(outcome.frames[s].frame)];
              check.sent += per_bus[i][s].sent;
              check.delivered += per_bus[i][s].delivered;
              check.missed += per_bus[i][s].missed;
            }
          }
        });
  });

  ev::util::Table table(
      "analytic P(miss) vs observed miss frequency (" + std::to_string(kSeeds) +
          "-seed fault-injection campaign)",
      {"bus", "frame", "analytic", "observed", "tolerance", "misses", "sent", "sound"});
  int violations = 0;
  int lost = 0;
  double max_excess = -1.0;
  for (const CrossCheck& c : checks) {
    const ev::analysis::FrameModel& frame = model.frames[c.frame];
    const double observed =
        c.sent == 0 ? 0.0
                    : static_cast<double>(c.missed) / static_cast<double>(c.sent);
    const double tolerance = hoeffding_tolerance(c.sent);
    const double excess = observed - (c.analytic + tolerance);
    const bool sound = excess <= 0.0;
    if (!sound) ++violations;
    if (c.delivered != c.sent) ++lost;  // errors must delay, never lose
    max_excess = std::max(max_excess, observed - c.analytic);
    char id_hex[16];
    std::snprintf(id_hex, sizeof id_hex, "0x%x", frame.id);
    table.add_row({model.buses[c.bus].scenario_name, id_hex,
                   ev::util::fmt(c.analytic, 6), ev::util::fmt(observed, 6),
                   ev::util::fmt(tolerance, 6), std::to_string(c.missed),
                   std::to_string(c.sent), sound ? "yes" : "NO"});
  }
  table.print();

  std::string crossval_path;
  if (write_crossval_json(model, checks, &crossval_path))
    std::printf("\ncross-validation record: %s\n", crossval_path.c_str());

  evbench::set_gauge("e24.comparisons", static_cast<double>(checks.size()));
  evbench::set_gauge("e24.violations", static_cast<double>(violations));
  evbench::set_gauge("e24.lost_frames", static_cast<double>(lost));
  evbench::set_gauge("e24.max_observed_minus_analytic", max_excess);
  evbench::set_gauge("e24.analysis_wall_s", analysis_wall_s);
  evbench::set_gauge("e24.campaign_wall_s", campaign_wall_s);

  std::printf("\ncomparisons: %zu, violations: %d, frames lost: %d, "
              "max observed-analytic gap: %.6f\n",
              checks.size(), violations, lost, max_excess);
  std::puts("expected shape: zero violations and zero lost frames — the "
            "analytic probability is an upper bound (critical-instant "
            "phasing, worst-case error placement), so observed frequencies "
            "sit below it and the --prob pass can gate deployment against "
            "stochastic faults without running a campaign.\n");
  return violations + lost;
}

void bm_analyze_probabilistic(benchmark::State& state) {
  const ScenarioSpec spec = scenario();
  const VehicleModel model = ev::analysis::extract_model(spec);
  for (auto _ : state)
    benchmark::DoNotOptimize(ev::analysis::analyze_probabilistic(model));
}
BENCHMARK(bm_analyze_probabilistic)->Unit(benchmark::kMicrosecond);

void bm_combined_tail(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(ev::analysis::combined_tail_above(3.2, 48, 0.02, 12));
}
BENCHMARK(bm_combined_tail)->Unit(benchmark::kNanosecond);

void bm_error_ladder(benchmark::State& state) {
  const ScenarioSpec spec = scenario();
  const VehicleModel model = ev::analysis::extract_model(spec);
  std::vector<ev::network::CanMessageSpec> messages;
  for (const ev::analysis::FrameModel& frame : model.frames)
    if (model.buses[frame.bus].scenario_name == "safety_can" &&
        frame.payload_bytes <= 8)
      messages.push_back({frame.id, frame.payload_bytes, frame.period_s, 0.0});
  const double overhead_s = 31.0 / kBitRateBps + 135.0 / kBitRateBps;
  for (auto _ : state)
    for (int k = 0; k <= 16; ++k)
      benchmark::DoNotOptimize(
          ev::network::can_response_times(messages, kBitRateBps, overhead_s, k));
}
BENCHMARK(bm_error_ladder)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int failures = run_experiment();
  const int rc = evbench::finish("e24_prob_timing", argc, argv);
  return failures > 0 ? 1 : rc;
}
