// Experiment E19: static analysis cross-validated against simulation. The
// point of `evsys check` is that its bounds are safe — a worst-case frame
// response or pub/sub delivery bound computed without running the vehicle
// must dominate anything the co-simulation actually observes. This
// experiment runs analyzer and simulation over the same scenarios across a
// seed ladder and compares every static bound against the corresponding
// observed maximum from the observability histograms: per-bus end-to-end
// frame latency, cockpit pub/sub delivery latency, and gateway hop latency.
// Any observation above its bound is a soundness violation and fails the
// binary. The margin column shows how conservative each bound is.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "ev/analysis/analyzer.h"
#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/obs/metrics.h"
#include "ev/util/stats.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::analysis::Diagnostic;
using ev::analysis::Report;
using ev::config::ScenarioSpec;

ScenarioSpec scenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "e19-urban";
  spec.drive.cycle = ev::config::CycleKind::kUrban;
  spec.powertrain.seed = seed;
  spec.subsystems.obs = true;      // the histograms are the ground truth
  spec.subsystems.health = true;   // heartbeat runnables included in the RTA
  spec.subsystems.security = true; // secure telemetry frames on the chassis
  return spec;
}

/// One static-bound-vs-observed-max comparison.
struct Check {
  std::string what;
  double bound_us = 0.0;
  double observed_us = 0.0;
  std::size_t samples = 0;
};

/// Observed maximum of histogram \p name, or no entry when it never fired.
void observe_max(ev::obs::MetricsRegistry& metrics, const std::string& name,
                 const std::string& what, double bound_us,
                 std::vector<Check>& out) {
  const ev::obs::MetricId id = metrics.find(name);
  if (id == ev::obs::kInvalidId) return;
  const ev::util::RunningStats& stats = metrics.histogram_stats(id);
  if (stats.count() == 0) return;
  out.push_back(Check{what, bound_us, stats.max(), stats.count()});
}

/// Analyzer + simulation over one seed; returns every comparable pair.
std::vector<Check> cross_validate(std::uint64_t seed) {
  const ScenarioSpec spec = scenario(seed);
  const ev::analysis::VehicleModel model = ev::analysis::extract_model(spec);
  const Report report = ev::analysis::analyze(model);

  std::unique_ptr<ev::core::VehicleSystem> vehicle;
  (void)ev::core::run_scenario(spec, &vehicle);
  auto* obs = vehicle->find_subsystem<ev::core::ObservabilitySubsystem>();
  ev::obs::MetricsRegistry& metrics = obs->metrics();

  std::vector<Check> checks;
  // Per-bus worst end-to-end frame response vs the observed latency
  // histogram (routed frames keep their origin timestamp, so the
  // destination-bus histogram carries the full multi-hop latency — exactly
  // what the analyzer's rta.bus bound covers).
  for (const ev::analysis::BusModel& bus : model.buses) {
    const Diagnostic* d = report.find("rta.bus", bus.scenario_name);
    if (d == nullptr) continue;
    observe_max(metrics, "net." + bus.display_name + ".frame_latency_us",
                bus.scenario_name, d->bound, checks);
  }
  // Cockpit pub/sub delivery vs the worst per-topic delivery bound.
  double pubsub_bound = 0.0;
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule_id == "rta.pubsub") pubsub_bound = std::max(pubsub_bound, d.bound);
  if (pubsub_bound > 0.0)
    observe_max(metrics, "mw." + model.app.ecu_name + ".pubsub.delivery_latency_us",
                model.app.ecu_name + " pub/sub", pubsub_bound, checks);
  // Gateway store-and-forward hop delay.
  if (const Diagnostic* d = report.find("gw.delay", "central-gateway"))
    observe_max(metrics, "net.gw.central-gateway.hop_latency_us", "gateway hop",
                d->bound, checks);
  return checks;
}

int run_experiment() {
  std::puts("E19 — static analyzer bounds vs simulated reality: every "
            "`evsys check` worst case must dominate the observed maximum\n");

  ev::util::Table table("per-seed bound vs observation (urban cycle)",
                        {"seed", "subject", "static bound", "observed max",
                         "margin", "samples", "sound"});
  int violations = 0;
  std::size_t compared = 0;
  double min_margin_us = 1e18;
  const int runs = 3;
  evbench::run_seeded_campaign(7, 1, runs, [&](std::uint64_t seed, int) {
    for (const Check& c : cross_validate(seed)) {
      const double margin = c.bound_us - c.observed_us;
      const bool sound = margin >= 0.0;
      if (!sound) ++violations;
      ++compared;
      min_margin_us = std::min(min_margin_us, margin);
      table.add_row({std::to_string(seed), c.what,
                     ev::util::fmt(c.bound_us, 1) + " us",
                     ev::util::fmt(c.observed_us, 1) + " us",
                     ev::util::fmt(margin, 1) + " us",
                     std::to_string(c.samples), sound ? "yes" : "NO"});
    }
  });
  table.print();

  evbench::set_gauge("e19.comparisons", static_cast<double>(compared));
  evbench::set_gauge("e19.violations", static_cast<double>(violations));
  evbench::set_gauge("e19.min_margin_us", min_margin_us);

  std::printf("\ncomparisons: %zu, violations: %d, tightest margin: %.1f us\n",
              compared, violations, min_margin_us);
  std::puts("expected shape: zero violations — the static bounds are safe "
            "(pessimistic but finite), so the analyzer can gate deployment "
            "without ever simulating the scenario.\n");
  return violations;
}

void bm_extract_model(benchmark::State& state) {
  const ScenarioSpec spec = scenario(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(ev::analysis::extract_model(spec));
}
BENCHMARK(bm_extract_model)->Unit(benchmark::kMicrosecond);

void bm_analyze(benchmark::State& state) {
  const ScenarioSpec spec = scenario(7);
  const ev::analysis::VehicleModel model = ev::analysis::extract_model(spec);
  for (auto _ : state)
    benchmark::DoNotOptimize(ev::analysis::analyze(model));
}
BENCHMARK(bm_analyze)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int violations = run_experiment();
  const int rc = evbench::finish("e19_static_vs_sim", argc, argv);
  return violations > 0 ? 1 : rc;
}
