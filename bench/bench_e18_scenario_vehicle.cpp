// Experiment E18: declarative scenarios through the composition root. The
// paper's integration argument — architecture means the whole vehicle, not
// one subsystem at a time — becomes testable once a text scenario can stand
// up plant + Fig. 1 network + cockpit middleware with pluggable fault,
// health, and observability subsystems. Two seeded campaigns run the same
// urban mission clean and with an injected fault sequence (partition crash,
// safety-CAN corruption bursts, bus-off); the faulted vehicle must end in a
// strictly escalated drive mode with less distance covered and less energy
// delivered. The scenario text itself round-trips losslessly, and same
// scenario + same seed means byte-identical result JSON — the property the
// CI determinism job checks end to end.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/faults/degradation.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::config::CycleKind;
using ev::config::FaultEventSpec;
using ev::config::FaultKind;
using ev::config::ScenarioSpec;

ScenarioSpec clean_scenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "e18-clean";
  spec.drive.cycle = CycleKind::kUrban;
  spec.powertrain.seed = seed;
  spec.subsystems.obs = false;  // keep the campaign lean; obs adds no physics
  spec.subsystems.faults = true;  // mode machine armed, nothing injected
  spec.subsystems.health = true;
  return spec;
}

ScenarioSpec faulted_scenario(std::uint64_t seed) {
  ScenarioSpec spec = clean_scenario(seed);
  spec.name = "e18-faulted";
  spec.fault_seed = seed * 31 + 5;
  spec.faults = {
      FaultEventSpec{2.0, FaultKind::kPartitionCrash, "information", 0.0},
      FaultEventSpec{5.0, FaultKind::kBusCorrupt, "safety_can", 4.0},
      FaultEventSpec{6.0, FaultKind::kBusCorrupt, "safety_can", 4.0},
      FaultEventSpec{8.0, FaultKind::kBusOff, "safety_can", 0.05},
  };
  return spec;
}

struct Outcome {
  double distance_km = 0.0;
  double energy_out_wh = 0.0;
  ev::faults::DriveMode final_mode = ev::faults::DriveMode::kNormal;
  std::size_t injections = 0;
  std::uint64_t restarts = 0;
};

Outcome run(const ScenarioSpec& spec) {
  std::unique_ptr<ev::core::VehicleSystem> vehicle;
  const ev::core::ScenarioRunResult r = ev::core::run_scenario(spec, &vehicle);
  Outcome out;
  out.distance_km = r.cosim.cycle.distance_km;
  out.energy_out_wh = r.cosim.cycle.battery_energy_out_wh;
  auto* faults = vehicle->find_subsystem<ev::core::FaultsSubsystem>();
  out.final_mode = faults->degradation().mode();
  out.injections = faults->plan().injections().size();
  auto* health = vehicle->find_subsystem<ev::core::HealthSubsystem>();
  out.restarts = health->monitor().restarts();
  return out;
}

void run_experiment() {
  std::puts("E18 — whole-vehicle scenarios through the composition root: "
            "clean vs faulted urban mission\n");

  ev::util::Table table("seeded campaign (urban cycle, per-seed clean/faulted pair)",
                        {"seed", "scenario", "distance", "battery out", "final mode",
                         "injected", "restarts"});
  double clean_km = 0.0, faulted_km = 0.0;
  double clean_wh = 0.0, faulted_wh = 0.0;
  bool escalated_everywhere = true;
  const int runs = 2;
  struct SeedPair {
    Outcome clean;
    Outcome faulted;
  };
  // Each rung runs its clean/faulted vehicle pair on a private simulator
  // stack; folding in seed order keeps the table and means deterministic.
  evbench::run_seeded_campaign(
      7, 1, runs, evbench::default_jobs(),
      [](std::uint64_t seed, int) {
        return SeedPair{run(clean_scenario(seed)), run(faulted_scenario(seed))};
      },
      [&](SeedPair pair, std::uint64_t seed, int) {
        clean_km += pair.clean.distance_km / runs;
        faulted_km += pair.faulted.distance_km / runs;
        clean_wh += pair.clean.energy_out_wh / runs;
        faulted_wh += pair.faulted.energy_out_wh / runs;
        escalated_everywhere =
            escalated_everywhere && pair.faulted.final_mode > pair.clean.final_mode;
        for (const Outcome* o : {&pair.clean, &pair.faulted})
          table.add_row({std::to_string(seed), o == &pair.clean ? "clean" : "faulted",
                         ev::util::fmt(o->distance_km, 2) + " km",
                         ev::util::fmt(o->energy_out_wh, 0) + " Wh",
                         ev::faults::to_string(o->final_mode),
                         std::to_string(o->injections), std::to_string(o->restarts)});
      });
  table.print();

  // The scenario text is the experiment's interface: serialize the faulted
  // spec and prove the round trip is lossless.
  const ScenarioSpec spec = faulted_scenario(7);
  const bool lossless = ev::config::ScenarioSpec::from_text(spec.to_text()) == spec;

  evbench::set_gauge("e18.clean.distance_km", clean_km);
  evbench::set_gauge("e18.faulted.distance_km", faulted_km);
  evbench::set_gauge("e18.clean.battery_out_wh", clean_wh);
  evbench::set_gauge("e18.faulted.battery_out_wh", faulted_wh);
  evbench::set_gauge("e18.faulted.escalated", escalated_everywhere ? 1.0 : 0.0);
  evbench::set_gauge("e18.spec_roundtrip_lossless", lossless ? 1.0 : 0.0);

  std::printf("\nscenario text round trip lossless: %s\n", lossless ? "yes" : "NO");
  std::puts("expected shape: the faulted vehicle ends every seed in a "
            "strictly escalated mode (derated or limp-home), covers less "
            "distance, and draws less energy from the pack — degradation "
            "trades mission completion for continued safe operation instead "
            "of stopping at the first fault.\n");
}

void bm_spec_roundtrip(benchmark::State& state) {
  const ScenarioSpec spec = faulted_scenario(7);
  for (auto _ : state) {
    const std::string text = spec.to_text();
    benchmark::DoNotOptimize(ev::config::ScenarioSpec::from_text(text));
  }
}
BENCHMARK(bm_spec_roundtrip)->Unit(benchmark::kMicrosecond);

void bm_build_vehicle(benchmark::State& state) {
  const ScenarioSpec spec = faulted_scenario(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(ev::core::build_vehicle(spec));
}
BENCHMARK(bm_build_vehicle)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e18_scenario_vehicle", argc, argv);
}
