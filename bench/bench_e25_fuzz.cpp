// Experiment E25: the seeded differential-testing campaign as a pinned
// artifact. A fixed (seed, count) fuzz run drives generated scenarios
// through the whole stack — text round trip, static pre-filter,
// co-simulation, and the conservation/E19/E24 oracles — and the campaign
// must come back clean: zero round-trip mismatches, zero invariant
// violations, zero bound or P(miss) violations, with the oracles actually
// exercised (non-zero comparison counts). Any failure fails the binary.
// The gauges pin the verdict mix so a generator regression that silently
// stops reaching faults, arch overrides, or simulation shows up in the
// perf gate, and the wall-time gauges feed the usual throughput gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "ev/config/scenario.h"
#include "ev/fuzz/fuzz.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

constexpr std::uint64_t kSeed = 1;
constexpr int kCount = 100;

double wall_seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

int run_experiment() {
  std::puts("E25 — seeded scenario fuzzing: differential testing of the "
            "parser, static analyzer, and co-simulation oracles\n");

  ev::fuzz::FuzzOptions options;
  options.seed = kSeed;
  options.count = kCount;
  options.jobs = evbench::default_jobs();

  ev::fuzz::FuzzResult result;
  const double fuzz_wall_s =
      wall_seconds([&] { result = ev::fuzz::run_fuzz(options); });

  int rejected = 0;
  int simulated = 0;
  int failed = 0;
  std::size_t check_warnings = 0;
  std::size_t bound_comparisons = 0;
  std::size_t prob_comparisons = 0;
  for (const ev::fuzz::ScenarioOutcome& outcome : result.scenarios) {
    switch (outcome.verdict) {
      case ev::fuzz::Verdict::kRejected: ++rejected; break;
      case ev::fuzz::Verdict::kSimulated: ++simulated; break;
      case ev::fuzz::Verdict::kFailed: ++failed; break;
    }
    check_warnings += outcome.check_warnings;
    bound_comparisons += outcome.bound_comparisons;
    prob_comparisons += outcome.prob_comparisons;
  }

  ev::util::Table table("fuzz campaign (seed " + std::to_string(kSeed) +
                            ", " + std::to_string(kCount) + " scenarios)",
                        {"outcome", "count"});
  table.add_row({"simulated, oracles upheld", std::to_string(simulated)});
  table.add_row({"rejected by static check", std::to_string(rejected)});
  table.add_row({"failed", std::to_string(failed)});
  table.add_row({"E19 bound comparisons", std::to_string(bound_comparisons)});
  table.add_row({"E24 P(miss) comparisons", std::to_string(prob_comparisons)});
  table.add_row({"fleet round trips",
                 std::to_string(result.fleets_generated)});
  table.print();

  for (const ev::fuzz::ScenarioOutcome& outcome : result.scenarios) {
    if (outcome.verdict != ev::fuzz::Verdict::kFailed) continue;
    std::printf("  FAILURE index %d: %s: %s\n", outcome.index,
                ev::fuzz::to_string(outcome.failure), outcome.detail.c_str());
  }
  for (int index : result.fleet_round_trip_failures)
    std::printf("  FAILURE fleet index %d: round trip mismatch\n", index);

  // The campaign is only evidence if the oracles ran: a clean report with
  // zero comparisons would mean the harness quietly stopped looking.
  int violations = static_cast<int>(result.failures());
  if (simulated == 0) ++violations;
  if (bound_comparisons == 0) ++violations;
  if (prob_comparisons == 0) ++violations;

  evbench::set_gauge("e25.generated", kCount);
  evbench::set_gauge("e25.simulated", simulated);
  evbench::set_gauge("e25.rejected", rejected);
  evbench::set_gauge("e25.failures", static_cast<double>(result.failures()));
  evbench::set_gauge("e25.check_warnings", static_cast<double>(check_warnings));
  evbench::set_gauge("e25.bound_comparisons",
                     static_cast<double>(bound_comparisons));
  evbench::set_gauge("e25.prob_comparisons",
                     static_cast<double>(prob_comparisons));
  evbench::set_gauge("e25.fleet_round_trips",
                     static_cast<double>(result.fleets_generated));
  evbench::set_gauge("e25.fuzz_wall_s", fuzz_wall_s);

  std::printf("\n%d scenarios: %d simulated, %d rejected, %zu failure(s); "
              "%zu bound + %zu P(miss) comparisons in %.1f s\n",
              kCount, simulated, rejected, result.failures(),
              bound_comparisons, prob_comparisons, fuzz_wall_s);
  std::puts("expected shape: zero failures with every oracle exercised — "
            "generated specs round-trip exactly, checked-clean specs "
            "simulate without tripping a conservation, static-bound, or "
            "P(miss) contract, and the report is a pure function of "
            "(seed, count).\n");
  return violations;
}

void bm_generate_scenario(benchmark::State& state) {
  const ev::fuzz::ScenarioGenerator gen(kSeed);
  int index = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(gen.scenario(index++ % kCount));
}
BENCHMARK(bm_generate_scenario)->Unit(benchmark::kMicrosecond);

void bm_round_trip(benchmark::State& state) {
  const ev::fuzz::ScenarioGenerator gen(kSeed);
  const ev::config::ScenarioSpec spec = gen.scenario(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ev::config::ScenarioSpec::from_text(spec.to_text()));
}
BENCHMARK(bm_round_trip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int violations = run_experiment();
  const int rc = evbench::finish("e25_fuzz", argc, argv);
  return violations > 0 ? 1 : rc;
}
