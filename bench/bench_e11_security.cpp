// Experiment E11 (paper Section 4.2): security. Three parts:
//  (a) per-frame overhead of authenticated (+encrypted) communication on
//      CAN vs FlexRay vs Ethernet payloads — the paper's claim that CAN is
//      "unsuitable for a secure communication due to the limited message
//      size";
//  (b) crypto primitive throughput on the (simulated) ECU class;
//  (c) the charging-plug attack/defence matrix with the man-in-the-middle
//      from refs [35][36].
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/security/charging.h"
#include "ev/security/hmac.h"
#include "ev/security/secure_channel.h"
#include "ev/security/sha256.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::security;

void run_experiment() {
  std::puts("E11 — security: frame overhead, primitives, charging MITM\n");

  // --- (a) secure-channel overhead per transport ----------------------------
  SecureChannel channel(Key(32, 0x5A), 1);
  ev::util::Table overhead("authenticated-frame overhead per transport",
                           {"transport", "frame payload", "security overhead",
                            "plaintext capacity", "verdict"});
  struct Transport {
    const char* name;
    std::size_t payload;
  };
  for (const Transport t : {Transport{"CAN 2.0", 8}, Transport{"CAN FD", 64},
                            Transport{"FlexRay slot", 32}, Transport{"Ethernet", 1500}}) {
    const auto cap = channel.max_plaintext(t.payload);
    overhead.add_row({t.name, std::to_string(t.payload) + " B",
                      std::to_string(channel.overhead_bytes()) + " B",
                      cap ? std::to_string(*cap) + " B" : "none",
                      cap ? (static_cast<double>(*cap) / t.payload > 0.5 ? "suitable"
                                                                          : "marginal")
                          : "UNSUITABLE"});
  }
  overhead.print();

  // --- (b) primitive throughput ----------------------------------------------
  std::puts("(primitive throughput measured below by google-benchmark)\n");

  // --- (c) charging attack/defence matrix ------------------------------------
  ev::util::Rng rng(17);
  const Key credential(16, 0x77);
  ev::util::Table matrix("charging-session MITM (11 kW, 30 min)",
                         {"attack", "authentication", "billed vs delivered",
                          "V2G cmds accepted", "messages rejected", "outcome"});
  const MitmAttacker::Attack attacks[] = {
      MitmAttacker::Attack::kNone, MitmAttacker::Attack::kInflateBilling,
      MitmAttacker::Attack::kInjectV2g, MitmAttacker::Attack::kReplayMeter};
  const char* names[] = {"none", "inflate billing", "inject V2G", "replay meter"};
  int defended = 0;
  for (bool auth : {false, true}) {
    for (int a = 0; a < 4; ++a) {
      MitmAttacker attacker(attacks[a]);
      ChargingConfig cfg;
      cfg.authenticate = auth;
      const SessionOutcome out =
          run_charging_session(credential, cfg, attacker, 11.0, 1800.0, rng);
      const bool fraud = out.billed_kwh > out.delivered_kwh + 1e-9 ||
                         out.accepted_v2g_commands > 0;
      if (auth && !fraud) ++defended;
      matrix.add_row({names[a], auth ? "challenge-response + MAC" : "none",
                      ev::util::fmt(out.billed_kwh, 3) + " / " +
                          ev::util::fmt(out.delivered_kwh, 3) + " kWh",
                      std::to_string(out.accepted_v2g_commands),
                      std::to_string(out.rejected_messages),
                      fraud ? "ATTACK SUCCEEDED" : "defended"});
    }
  }
  matrix.print();
  evbench::set_gauge("e11.authenticated.defended_attacks",
                     static_cast<double>(defended));
  std::puts("expected shape: every armed attack succeeds without authentication "
            "and is rejected with it; CAN cannot even carry the protected "
            "frames while Ethernet absorbs the overhead.\n");
}

void bm_sha256_1k(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(bm_sha256_1k);

void bm_hmac_64(benchmark::State& state) {
  const Key key(32, 1);
  std::vector<std::uint8_t> msg(64, 0xCD);
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, msg));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(bm_hmac_64);

void bm_secure_channel_roundtrip(benchmark::State& state) {
  SecureChannel tx(Key(32, 2), 9);
  SecureChannel rx(Key(32, 2), 9);
  std::vector<std::uint8_t> msg(32, 0xEF);
  for (auto _ : state) {
    const auto wire = tx.protect(msg);
    benchmark::DoNotOptimize(rx.unprotect(wire));
  }
}
BENCHMARK(bm_secure_channel_roundtrip);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e11_security", argc, argv);
}
