// Experiment E8 (paper Section 3, "federated -> integrated"): deploy the
// same functional content in both architecture styles and compare ECU
// count, wiring, hardware cost, utilization, and signal locality — the
// quantitative case for the consolidation paradigm shift. Also sweeps the
// system size to show how the gap grows as vehicles gain functions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/core/evaluation.h"
#include "ev/core/synthesis.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::core;

void run_experiment() {
  std::puts("E8 — federated (Fig. 1) vs integrated (consolidated) architecture\n");

  const FunctionNetwork net = reference_function_network();
  const ArchitectureMetrics fed = evaluate(synthesize_federated(net));
  const ArchitectureMetrics integ = evaluate(synthesize_integrated(net));

  ev::util::Table cmp("reference EV function network (" +
                          std::to_string(net.functions.size()) + " functions)",
                      {"metric", "federated", "integrated", "ratio"});
  auto ratio = [](double a, double b) { return ev::util::fmt(a / b, 2) + "x"; };
  cmp.add_row({"ECU count", std::to_string(fed.ecu_count), std::to_string(integ.ecu_count),
               ratio(static_cast<double>(fed.ecu_count), static_cast<double>(integ.ecu_count))});
  cmp.add_row({"buses + gateways", std::to_string(fed.bus_count + fed.gateway_count),
               std::to_string(integ.bus_count + integ.gateway_count), "-"});
  cmp.add_row({"wiring", ev::util::fmt(fed.wiring_m, 1) + " m",
               ev::util::fmt(integ.wiring_m, 1) + " m",
               ratio(fed.wiring_m, integ.wiring_m)});
  cmp.add_row({"hardware cost", ev::util::fmt(fed.hardware_cost, 1),
               ev::util::fmt(integ.hardware_cost, 1),
               ratio(fed.hardware_cost, integ.hardware_cost)});
  cmp.add_row({"mean ECU utilization", ev::util::fmt_pct(fed.mean_utilization),
               ev::util::fmt_pct(integ.mean_utilization), "-"});
  cmp.add_row({"networked signals", std::to_string(fed.cross_ecu_signals),
               std::to_string(integ.cross_ecu_signals), "-"});
  cmp.add_row({"ECU-local signals", std::to_string(fed.local_signals),
               std::to_string(integ.local_signals), "-"});
  cmp.add_row({"worst bus load", ev::util::fmt_pct(fed.worst_bus_load, 2),
               ev::util::fmt_pct(integ.worst_bus_load, 2), "-"});
  cmp.print();

  evbench::set_gauge("e8.federated.ecus", static_cast<double>(fed.ecu_count));
  evbench::set_gauge("e8.integrated.ecus", static_cast<double>(integ.ecu_count));

  ev::util::Table sweep("scaling: ECU count vs functional content",
                        {"functions", "federated ECUs", "integrated ECUs",
                         "integrated cost saving"});
  for (std::size_t scale : {1u, 2u, 4u, 8u}) {
    const FunctionNetwork n = reference_function_network(scale);
    const ArchitectureMetrics f = evaluate(synthesize_federated(n));
    const ArchitectureMetrics i = evaluate(synthesize_integrated(n));
    sweep.add_row({std::to_string(n.functions.size()), std::to_string(f.ecu_count),
                   std::to_string(i.ecu_count),
                   ev::util::fmt_pct(1.0 - i.hardware_cost / f.hardware_cost)});
  }
  sweep.print();

  // Middleware's role: without partition-based isolation, ASIL segregation
  // forces extra boxes.
  IntegratedOptions no_mw;
  no_mw.partitioned_middleware = false;
  const ArchitectureMetrics raw = evaluate(synthesize_integrated(net, no_mw));
  std::printf("integrated WITHOUT partitioned middleware: %zu ECUs (vs %zu with) — "
              "the middleware's isolation is what permits full consolidation.\n\n",
              raw.ecu_count, integ.ecu_count);
  std::puts("expected shape: consolidation cuts ECU count by 3-5x and wiring/cost "
            "substantially, at much higher (but bounded) per-ECU utilization.\n");
}

void bm_synthesize_integrated(benchmark::State& state) {
  const FunctionNetwork net =
      reference_function_network(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(synthesize_integrated(net));
}
BENCHMARK(bm_synthesize_integrated)->Arg(1)->Arg(8);

void bm_evaluate(benchmark::State& state) {
  const Architecture arch = synthesize_federated(reference_function_network(4));
  for (auto _ : state) benchmark::DoNotOptimize(evaluate(arch));
}
BENCHMARK(bm_evaluate);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e8_consolidation", argc, argv);
}
