// Experiment E10 (paper Section 3.2 "GPU", ref [23]): pedestrian-detection
// image processing on a data-parallel accelerator model vs a scalar CPU
// path. Measures the speed-up vs worker count and image size — the paper's
// argument that "a GPU is significantly faster at processing an image"
// thanks to hardware-level parallelism, with overhead dominating small
// inputs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "ev/ecu/vision.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::ecu;
using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& fn, int repeats = 3) {
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  return best;
}

void run_experiment() {
  std::puts("E10 — pedestrian detection: scalar CPU vs data-parallel accelerator\n");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host parallelism: %u hardware thread(s). Thread speed-up is\n"
              "bounded by this; the 'PE model' column shows the accelerator\n"
              "scaling law (work/span + dispatch overhead) the threads realize\n"
              "when hardware parallelism is available.\n\n", hw);
  const DetectorConfig cfg;

  ev::util::Table table("detection latency vs image size and parallel width",
                        {"image", "windows", "scalar ms", "4 workers", "8 workers",
                         "speedup x8", "PE model x8", "detections"});
  struct Size {
    std::size_t w, h;
  };
  for (const Size s : {Size{160, 120}, Size{320, 240}, Size{640, 480}, Size{1280, 720}}) {
    ev::util::Rng rng(31);
    const Image img = generate_scene(s.w, s.h, 6, rng);
    std::vector<Detection> out;
    const double scalar_ms =
        time_ms([&] { out = detect_pedestrians_scalar(img, cfg); });
    const double p4_ms =
        time_ms([&] { (void)detect_pedestrians_parallel(img, cfg, 4); });
    const double p8_ms =
        time_ms([&] { (void)detect_pedestrians_parallel(img, cfg, 8); });
    const std::size_t windows =
        ((s.w - cfg.window_w) / cfg.stride + 1) * ((s.h - cfg.window_h) / cfg.stride + 1);
    // Accelerator scaling law: perfect division of the window workload over
    // 8 processing elements plus a fixed per-worker dispatch cost (measured
    // thread spawn ~50 us on this host).
    constexpr double kDispatchMsPerWorker = 0.05;
    const double model8_ms = scalar_ms / 8.0 + 8 * kDispatchMsPerWorker;
    // Overwritten per size; the snapshot keeps the 1280x720 frame. The
    // wall-clock columns stay out of the gauges (non-deterministic).
    evbench::set_gauge("e10.windows", static_cast<double>(windows));
    evbench::set_gauge("e10.detections", static_cast<double>(out.size()));
    table.add_row({std::to_string(s.w) + "x" + std::to_string(s.h),
                   std::to_string(windows), ev::util::fmt(scalar_ms, 2),
                   ev::util::fmt(p4_ms, 2), ev::util::fmt(p8_ms, 2),
                   ev::util::fmt(scalar_ms / p8_ms, 2) + "x",
                   ev::util::fmt(scalar_ms / model8_ms, 2) + "x",
                   std::to_string(out.size())});
  }
  table.print();
  std::puts("expected shape: on hardware with >= 8 threads the measured "
            "speed-up approaches the PE-model column on large frames and "
            "collapses on small ones where dispatch dominates — the same "
            "scaling argument as GPU offload. On a single-hardware-thread "
            "host the measured columns stay ~1x while the model shows the "
            "realizable scaling.\n");
}

void bm_scalar(benchmark::State& state) {
  ev::util::Rng rng(33);
  const Image img = generate_scene(static_cast<std::size_t>(state.range(0)),
                                   static_cast<std::size_t>(state.range(0)) * 3 / 4, 4,
                                   rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(detect_pedestrians_scalar(img, DetectorConfig{}));
}
BENCHMARK(bm_scalar)->Arg(160)->Arg(640)->Unit(benchmark::kMillisecond);

void bm_parallel8(benchmark::State& state) {
  ev::util::Rng rng(33);
  const Image img = generate_scene(static_cast<std::size_t>(state.range(0)),
                                   static_cast<std::size_t>(state.range(0)) * 3 / 4, 4,
                                   rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(detect_pedestrians_parallel(img, DetectorConfig{}, 8));
}
BENCHMARK(bm_parallel8)->Arg(160)->Arg(640)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e10_parallel_vision", argc, argv);
}
