// Experiment E5 (paper Section 3.1 "Time-triggered Scheduling"): determinism
// of event-triggered vs time-triggered communication for EV control
// traffic. The same periodic message set runs on (a) CAN with priority
// arbitration, (b) FlexRay static slots with schedule-synchronized senders,
// and (c) time-triggered Ethernet (time-aware gates). Latency mean/max and
// jitter are compared while background load rises.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <memory>

#include "ev/network/can.h"
#include "ev/network/ethernet.h"
#include "ev/network/flexray.h"
#include "ev/sim/simulator.h"
#include "ev/util/rng.h"
#include "ev/util/stats.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::network;
using ev::sim::Simulator;
using ev::sim::Time;

struct LatencyResult {
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double jitter_ms = 0.0;  // max - min
};

LatencyResult stats_of(const ev::util::SampleSeries& s) {
  return LatencyResult{s.mean() * 1e3, s.max() * 1e3, (s.max() - s.min()) * 1e3};
}

// The monitored control message: 8 bytes every 10 ms.
constexpr std::uint32_t kControlId = 0x20;

LatencyResult run_can(int background_senders, bool observed = false) {
  Simulator sim;
  if (observed) evbench::observe(sim);
  CanBus bus(sim, "can", 500e3);
  auto rng = std::make_shared<ev::util::Rng>(97);
  ev::util::SampleSeries latency;
  bus.subscribe([&](const Frame& f, Time at) {
    if (f.id == kControlId) latency.add((at - f.created).to_seconds());
  });
  sim.schedule_periodic(Time{}, Time::ms(10), [&] {
    Frame f;
    f.id = kControlId;
    f.payload_size = 8;
    (void)bus.send(f);
  });
  // Background traffic with release jitter (event-triggered senders are not
  // phase-locked in a real vehicle), half higher and half lower priority
  // than the monitored message.
  for (int k = 0; k < background_senders; ++k) {
    const std::uint32_t id = (k % 2 == 0) ? 0x10 + static_cast<std::uint32_t>(k)
                                          : 0x100 + static_cast<std::uint32_t>(k);
    auto send_next = std::make_shared<std::function<void()>>();
    *send_next = [&sim, &bus, rng, id, send_next] {
      Frame f;
      f.id = id;
      f.payload_size = 8;
      (void)bus.send(f);
      const double next_s = 5e-3 * rng->uniform(0.6, 1.4);
      sim.schedule_in(Time::seconds(next_s), *send_next);
    };
    sim.schedule_in(Time::us(rng->uniform_int(0, 5000)), *send_next);
  }
  sim.run_until(Time::s(20));
  return stats_of(latency);
}

LatencyResult run_flexray(int background_senders, bool observed = false) {
  Simulator sim;
  if (observed) evbench::observe(sim);
  FlexRayConfig cfg;
  cfg.static_slots.push_back({kControlId, 1, 16});
  for (int k = 0; k < background_senders; ++k)
    cfg.static_slots.push_back({0x100 + static_cast<std::uint32_t>(k),
                                static_cast<NodeId>(2 + k), 16});
  FlexRayBus bus(sim, "flexray", cfg);
  ev::util::SampleSeries latency;
  bus.subscribe([&](const Frame& f, Time at) {
    if (f.id == kControlId) latency.add((at - f.created).to_seconds());
  });
  bus.start();
  // Sender synchronized with the communication cycle (the global schedule
  // the paper describes).
  sim.schedule_periodic(Time::us(1), Time::seconds(bus.cycle_time_s()), [&] {
    Frame f;
    f.id = kControlId;
    (void)bus.send(f);
  });
  for (int k = 0; k < background_senders; ++k) {
    const std::uint32_t id = 0x100 + static_cast<std::uint32_t>(k);
    sim.schedule_periodic(Time::us(1), Time::seconds(bus.cycle_time_s()), [&bus, id] {
      Frame f;
      f.id = id;
      (void)bus.send(f);
    });
  }
  sim.run_until(Time::s(20));
  return stats_of(latency);
}

LatencyResult run_tt_ethernet(int background_senders, bool observed = false) {
  Simulator sim;
  if (observed) evbench::observe(sim);
  EthernetSwitch sw(sim, "eth", 2);
  sw.attach(1, 0);
  sw.add_route(kControlId, EthRoute{{1}, EthClass::kTimeTriggered});
  for (int k = 0; k < background_senders; ++k)
    sw.add_route(0x100 + static_cast<std::uint32_t>(k),
                 EthRoute{{1}, EthClass::kBestEffort});
  // 1 ms gating cycle: a protected TT window plus a best-effort remainder.
  GateSchedule gs;
  gs.cycle_s = 1e-3;
  gs.windows.push_back(GateWindow{0.0, 0.1e-3, true});
  gs.windows.push_back(GateWindow{0.1e-3, 0.9e-3, false});
  sw.set_gate_schedule(1, gs);

  ev::util::SampleSeries latency;
  sw.subscribe([&](const Frame& f, Time at) {
    if (f.id == kControlId) latency.add((at - f.created).to_seconds());
  });
  // TT sender phase-aligned with the gate cycle.
  sim.schedule_periodic(Time{}, Time::ms(10), [&] {
    Frame f;
    f.id = kControlId;
    f.source = 1;
    f.payload_size = 8;
    (void)sw.send(f);
  });
  for (int k = 0; k < background_senders; ++k) {
    const std::uint32_t id = 0x100 + static_cast<std::uint32_t>(k);
    sim.schedule_periodic(Time::us(211 * (k + 1)), Time::ms(2), [&sw, id] {
      Frame f;
      f.id = id;
      f.source = 1;
      f.payload_size = 1200;
      (void)sw.send(f);
    });
  }
  sim.run_until(Time::s(20));
  return stats_of(latency);
}

void run_experiment() {
  std::puts("E5 — event-triggered vs time-triggered transport for a 10 ms "
            "control message\n");
  ev::util::Table table("latency and jitter vs background load",
                        {"transport", "background senders", "mean", "max", "jitter"});
  for (int bg : {0, 8, 16}) {
    const LatencyResult can = run_can(bg, /*observed=*/true);
    table.add_row({"CAN (event-triggered)", std::to_string(bg),
                   ev::util::fmt(can.mean_ms, 3) + " ms",
                   ev::util::fmt(can.max_ms, 3) + " ms",
                   ev::util::fmt(can.jitter_ms, 3) + " ms"});
  }
  for (int bg : {0, 4, 7}) {  // static segment holds 8 slots total
    const LatencyResult fr = run_flexray(bg, /*observed=*/true);
    table.add_row({"FlexRay static (TT)", std::to_string(bg),
                   ev::util::fmt(fr.mean_ms, 3) + " ms",
                   ev::util::fmt(fr.max_ms, 3) + " ms",
                   ev::util::fmt(fr.jitter_ms, 3) + " ms"});
  }
  for (int bg : {0, 8, 16}) {
    const LatencyResult eth = run_tt_ethernet(bg, /*observed=*/true);
    table.add_row({"TT Ethernet (gated)", std::to_string(bg),
                   ev::util::fmt(eth.mean_ms, 3) + " ms",
                   ev::util::fmt(eth.max_ms, 3) + " ms",
                   ev::util::fmt(eth.jitter_ms, 3) + " ms"});
  }
  table.print();
  evbench::set_gauge("e5.can.max_latency_ms", run_can(16, /*observed=*/true).max_ms);
  evbench::set_gauge("e5.tt_eth.jitter_ms", run_tt_ethernet(16, /*observed=*/true).jitter_ms);
  std::puts("expected shape: CAN latency and jitter grow with load; the "
            "time-triggered transports hold constant latency with (near-)zero "
            "jitter regardless of background traffic.\n");
}

void bm_can_simulation(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_can(8));
}
BENCHMARK(bm_can_simulation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e5_tt_vs_et", argc, argv);
}
