// Experiment E21: the zero-allocation hot path, measured. The rework keeps
// every deterministic artifact byte-identical (Golden.HotPathArtifacts pins
// that) and buys its speed in three places: the event kernel (slab/free-list
// arena + flat binary heap + inline EventFn instead of an unordered_map,
// node-based priority queue, and std::function), the battery plant
// (structure-of-arrays CellBatch::step_all instead of a virtual-free but
// pointer-chasing per-cell object loop), and the pub/sub plane (span
// publish into a reusable arena instead of one owning vector per sample).
// To make the win measurable inside one binary, this experiment embeds a
// faithful miniature of the *pre-rework* kernel (same containers, same
// re-arm-before-dispatch semantics, same per-dispatch handler copy) and
// replays E18's dispatch mix through both kernels. The headline gauge is
// that A/B speedup; the acceptance bar is >= 2x. Wall-clock gauges live
// only here — never in the byte-compared E2/E17/E18 artifacts — and feed
// scripts/perfgate.py.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ev/battery/cell.h"
#include "ev/battery/cell_batch.h"
#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/middleware/pubsub.h"
#include "ev/sim/simulator.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::sim::EventId;
using ev::sim::Time;

// --- the pre-rework kernel, verbatim in miniature ----------------------------
// Containers, id allocation, FIFO tie-break, re-arm-before-dispatch, and the
// per-dispatch std::function copy all match the seed implementation; only
// observer hooks and tags are omitted (both sides run unobserved here).
namespace legacy {

class Kernel {
 public:
  using Handler = std::function<void()>;

  EventId schedule_at(Time at, Handler handler) {
    return enqueue(at, std::move(handler), false, Time{});
  }
  EventId schedule_in(Time delay, Handler handler) {
    return enqueue(now_ + delay, std::move(handler), false, Time{});
  }
  EventId schedule_periodic(Time first, Time period, Handler handler) {
    return enqueue(first, std::move(handler), true, period);
  }

  bool cancel(EventId id) { return live_.erase(id) != 0; }

  std::size_t run_until(Time until) {
    std::size_t dispatched = 0;
    while (!queue_.empty()) {
      const Scheduled top = queue_.top();
      auto it = live_.find(top.id);
      if (it == live_.end()) {
        queue_.pop();
        continue;
      }
      if (top.at > until) break;
      queue_.pop();
      now_ = top.at;
      ++dispatched_;
      ++dispatched;
      if (it->second.periodic) {
        Handler handler = it->second.handler;  // per-dispatch copy, as seeded
        queue_.push(Scheduled{top.at + it->second.period, next_seq_++, top.id});
        handler();
      } else {
        Handler handler = std::move(it->second.handler);
        live_.erase(it);
        handler();
      }
    }
    if (now_ < until) now_ = until;
    return dispatched;
  }

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  struct Scheduled {
    Time at;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Entry {
    Handler handler;
    Time period{};
    bool periodic = false;
  };

  EventId enqueue(Time at, Handler handler, bool periodic, Time period) {
    const EventId id = next_id_++;
    queue_.push(Scheduled{at, next_seq_++, id});
    live_.emplace(id, Entry{std::move(handler), period, periodic});
    return id;
  }

  Time now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  std::unordered_map<EventId, Entry> live_;
};

}  // namespace legacy

/// E18's dispatch mix, kernel-agnostic: the 44.1 kHz MOST audio stream that
/// dominates the scenario-vehicle run, a 10 kHz bus tick that chains a
/// one-shot frame delivery each period (the handler carries a moved-in
/// 40-byte payload, as a network frame send does — larger than
/// std::function's inline buffer, within EventFn's 64 bytes), the 1 kHz
/// middleware major frame, 100 Hz control, 10 Hz pack-state publication, a
/// watchdog that cancels and re-arms a timeout every control period (the
/// cancel/reschedule churn the arena free list must absorb), and 200
/// staggered per-node heartbeats so the live set carries scenario-scale
/// depth. Returns events dispatched — identical for both kernels by
/// construction.
template <typename Kernel>
std::uint64_t run_event_mix(Kernel& kernel, int sim_seconds) {
  std::uint64_t work = 0;
  struct FramePayload {  // what a bus delivery closure drags along
    double fields[4];
    std::uint64_t id;
  };
  kernel.schedule_periodic(Time::ns(22676), Time::ns(22676), [&] { ++work; });
  auto timeout = std::make_shared<EventId>(ev::sim::kNoEvent);
  kernel.schedule_periodic(Time::us(100), Time::us(100), [&kernel, &work] {
    FramePayload payload{{1.0, 2.0, 3.0, 4.0}, work};
    kernel.schedule_in(Time::us(20), [&work, payload] {
      work += payload.id != 0 ? 1 : 2;
    });
    ++work;
  });
  kernel.schedule_periodic(Time::ms(1), Time::ms(1), [&] { ++work; });
  kernel.schedule_periodic(Time::ms(10), Time::ms(10), [&kernel, &work, timeout] {
    if (*timeout != ev::sim::kNoEvent) (void)kernel.cancel(*timeout);
    *timeout = kernel.schedule_at(kernel.now() + Time::ms(50), [&work] { ++work; });
    ++work;
  });
  kernel.schedule_periodic(Time::ms(100), Time::ms(100), [&] { ++work; });
  for (int node = 0; node < 200; ++node)  // ECU heartbeats: live-set depth
    kernel.schedule_periodic(Time::ms(5 + node), Time::ms(1000), [&] { ++work; });
  kernel.run_until(Time::seconds(sim_seconds));
  benchmark::DoNotOptimize(work);
  return kernel.dispatched();
}

double wall_seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best of three: the gauges feed a wall-time regression gate, so shave off
/// scheduler noise instead of averaging it in.
double best_wall_of3(const std::function<void()>& body) {
  double best = wall_seconds(body);
  for (int i = 0; i < 2; ++i) best = std::min(best, wall_seconds(body));
  return best;
}

constexpr int kMixSimSeconds = 30;

struct KernelAB {
  double legacy_s = 0.0;
  double arena_s = 0.0;
  std::uint64_t legacy_dispatched = 0;
  std::uint64_t arena_dispatched = 0;
  std::uint64_t heap_constructions_delta = 0;
};

KernelAB measure_kernels() {
  KernelAB ab;
  ab.legacy_s = best_wall_of3([&ab] {
    legacy::Kernel kernel;
    ab.legacy_dispatched = run_event_mix(kernel, kMixSimSeconds);
  });
  const std::uint64_t heap_before = ev::sim::EventFn::heap_constructions();
  ab.arena_s = best_wall_of3([&ab] {
    ev::sim::Simulator kernel;
    ab.arena_dispatched = run_event_mix(kernel, kMixSimSeconds);
  });
  ab.heap_constructions_delta = ev::sim::EventFn::heap_constructions() - heap_before;
  return ab;
}

// --- battery plant: AoS object loop vs SoA batch -----------------------------

std::vector<ev::battery::Cell> make_cells(std::size_t count) {
  std::vector<ev::battery::Cell> cells;
  cells.reserve(count);
  const ev::battery::OcvCurve curve = ev::battery::OcvCurve::nmc();
  for (std::size_t i = 0; i < count; ++i)
    cells.emplace_back(ev::battery::CellParameters{}, curve,
                       0.6 + 0.002 * static_cast<double>(i % 32));
  return cells;
}

struct CellsAB {
  double aos_s = 0.0;
  double soa_s = 0.0;
  double checksum_delta = 0.0;  // |mean SoC (AoS) - mean SoC (SoA)|: must be 0
};

CellsAB measure_cells(std::size_t count, int steps) {
  CellsAB ab;
  const std::vector<ev::battery::Cell> seed_cells = make_cells(count);
  const std::vector<double> current(count, 12.0);
  const std::vector<double> heat(count, 0.0);
  double aos_mean = 0.0;
  double soa_mean = 0.0;

  ab.aos_s = best_wall_of3([&] {
    std::vector<ev::battery::Cell> cells = seed_cells;
    for (int s = 0; s < steps; ++s)
      for (std::size_t i = 0; i < cells.size(); ++i)
        (void)cells[i].step(current[i], 0.01, 25.0, heat[i]);
    aos_mean = 0.0;
    for (const ev::battery::Cell& c : cells) aos_mean += c.soc();
    aos_mean /= static_cast<double>(cells.size());
  });

  ab.soa_s = best_wall_of3([&] {
    ev::battery::CellBatch batch(seed_cells);
    for (int s = 0; s < steps; ++s)
      (void)batch.step_all(current, heat, 0.01, 25.0);
    soa_mean = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) soa_mean += batch.soc(i);
    soa_mean /= static_cast<double>(batch.size());
  });

  ab.checksum_delta = std::abs(aos_mean - soa_mean);
  return ab;
}

// --- pub/sub plane: owning vector publish vs span-into-arena publish ---------

struct PublishAB {
  double owning_s = 0.0;
  double span_s = 0.0;
  std::uint64_t bytes_seen = 0;
};

PublishAB measure_publish(int samples) {
  PublishAB ab;
  struct Pod {
    double a;
    double b;
    std::int64_t seq;
  };
  constexpr ev::middleware::TopicId kTopic = 21;
  constexpr int kFlushEvery = 64;

  ab.owning_s = best_wall_of3([&ab, samples] {
    ev::middleware::PubSubBroker broker;
    std::uint64_t bytes = 0;
    broker.subscribe(kTopic, [&bytes](const ev::middleware::SampleView& view) {
      bytes += view.data.size();
    });
    Pod pod{1.0, 2.0, 0};
    for (int i = 0; i < samples; ++i) {
      pod.seq = i;
      // Emulates the retired owning-vector overload: allocate a fresh vector
      // per sample and copy into it before the broker copies again into its
      // arena. That double copy is exactly what the span entry point removes.
      std::vector<std::uint8_t> owned(sizeof(Pod));
      std::memcpy(owned.data(), &pod, sizeof(Pod));
      broker.publish(kTopic, owned, i);
      if (i % kFlushEvery == kFlushEvery - 1) (void)broker.flush(i);
    }
    (void)broker.flush(samples);
    ab.bytes_seen = bytes;
  });

  ab.span_s = best_wall_of3([&ab, samples] {
    ev::middleware::PubSubBroker broker;
    std::uint64_t bytes = 0;
    broker.subscribe(kTopic, [&bytes](const ev::middleware::SampleView& view) {
      bytes += view.data.size();
    });
    Pod pod{1.0, 2.0, 0};
    for (int i = 0; i < samples; ++i) {
      pod.seq = i;
      broker.publish(kTopic,
                     std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(&pod), sizeof(Pod)),
                     i);
      if (i % kFlushEvery == kFlushEvery - 1) (void)broker.flush(i);
    }
    (void)broker.flush(samples);
    ab.bytes_seen = bytes;
  });
  return ab;
}

// --- the whole vehicle, once, on the clock -----------------------------------

double measure_scenario() {
  ev::config::ScenarioSpec spec;
  spec.name = "e21-hot-path";
  spec.drive.cycle = ev::config::CycleKind::kUrban;
  spec.powertrain.seed = 7;
  spec.subsystems.obs = false;
  spec.subsystems.faults = true;
  spec.subsystems.health = true;
  return wall_seconds([&spec] { (void)ev::core::run_scenario(spec, nullptr); });
}

void run_experiment() {
  std::puts("E21 — zero-allocation hot path: arena kernel, SoA cell batch, "
            "and zero-copy publish, A/B against the pre-rework design\n");

  const KernelAB kernel = measure_kernels();
  const double kernel_speedup = kernel.legacy_s / kernel.arena_s;
  const CellsAB cells = measure_cells(/*count=*/96, /*steps=*/50000);
  const double cells_speedup = cells.aos_s / cells.soa_s;
  const PublishAB publish = measure_publish(/*samples=*/1'000'000);
  const double publish_speedup = publish.owning_s / publish.span_s;
  const double scenario_s = measure_scenario();

  ev::util::Table table("hot-path A/B (best of 3, identical workloads)",
                        {"stage", "before [s]", "after [s]", "speedup"});
  table.add_row({"event kernel (E18 dispatch mix, 30 s sim)",
                 ev::util::fmt(kernel.legacy_s, 3), ev::util::fmt(kernel.arena_s, 3),
                 ev::util::fmt(kernel_speedup, 2) + "x"});
  table.add_row({"battery plant (96 cells x 50k steps)", ev::util::fmt(cells.aos_s, 3),
                 ev::util::fmt(cells.soa_s, 3), ev::util::fmt(cells_speedup, 2) + "x"});
  table.add_row({"pub/sub publish (1M samples)", ev::util::fmt(publish.owning_s, 3),
                 ev::util::fmt(publish.span_s, 3),
                 ev::util::fmt(publish_speedup, 2) + "x"});
  table.print();

  std::printf("\nkernel dispatches: legacy %llu, arena %llu (must match)\n",
              static_cast<unsigned long long>(kernel.legacy_dispatched),
              static_cast<unsigned long long>(kernel.arena_dispatched));
  std::printf("arena heap constructions during mix: %llu (zero-allocation claim)\n",
              static_cast<unsigned long long>(kernel.heap_constructions_delta));
  std::printf("SoA vs AoS mean-SoC delta: %.3g (bit-exactness claim)\n",
              cells.checksum_delta);
  std::printf("full urban scenario, single seed: %.3f s wall\n", scenario_s);
  std::printf("kernel speedup %.2fx >= 2x target: %s\n\n", kernel_speedup,
              kernel_speedup >= 2.0 ? "yes" : "NO");

  evbench::set_gauge("e21.kernel.legacy_wall_s", kernel.legacy_s);
  evbench::set_gauge("e21.kernel.arena_wall_s", kernel.arena_s);
  evbench::set_gauge("e21.kernel.speedup", kernel_speedup);
  evbench::set_gauge("e21.kernel.dispatch_match",
                     kernel.legacy_dispatched == kernel.arena_dispatched ? 1.0 : 0.0);
  evbench::set_gauge("e21.kernel.heap_constructions",
                     static_cast<double>(kernel.heap_constructions_delta));
  evbench::set_gauge("e21.cells.aos_wall_s", cells.aos_s);
  evbench::set_gauge("e21.cells.soa_wall_s", cells.soa_s);
  evbench::set_gauge("e21.cells.speedup", cells_speedup);
  evbench::set_gauge("e21.cells.mean_soc_delta", cells.checksum_delta);
  evbench::set_gauge("e21.publish.owning_wall_s", publish.owning_s);
  evbench::set_gauge("e21.publish.span_wall_s", publish.span_s);
  evbench::set_gauge("e21.publish.speedup", publish_speedup);
  evbench::set_gauge("e21.scenario.wall_s", scenario_s);
  evbench::set_gauge("e21.speedup_target_met", kernel_speedup >= 2.0 ? 1.0 : 0.0);
}

void bm_arena_event_mix(benchmark::State& state) {
  for (auto _ : state) {
    ev::sim::Simulator kernel;
    benchmark::DoNotOptimize(run_event_mix(kernel, 1));
  }
}
BENCHMARK(bm_arena_event_mix)->Unit(benchmark::kMillisecond);

void bm_legacy_event_mix(benchmark::State& state) {
  for (auto _ : state) {
    legacy::Kernel kernel;
    benchmark::DoNotOptimize(run_event_mix(kernel, 1));
  }
}
BENCHMARK(bm_legacy_event_mix)->Unit(benchmark::kMillisecond);

void bm_cell_batch_step_all(benchmark::State& state) {
  const std::vector<ev::battery::Cell> seed_cells = make_cells(96);
  ev::battery::CellBatch batch(seed_cells);
  const std::vector<double> current(96, 12.0);
  const std::vector<double> heat(96, 0.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(batch.step_all(current, heat, 0.01, 25.0));
}
BENCHMARK(bm_cell_batch_step_all)->Unit(benchmark::kMicrosecond);

void bm_span_publish_flush(benchmark::State& state) {
  ev::middleware::PubSubBroker broker;
  std::uint64_t bytes = 0;
  broker.subscribe(21, [&bytes](const ev::middleware::SampleView& view) {
    bytes += view.data.size();
  });
  double payload[3] = {1.0, 2.0, 3.0};
  for (auto _ : state) {
    broker.publish(21,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(payload), sizeof(payload)),
                   0);
    broker.flush(0);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(bm_span_publish_flush)->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e21_hot_path", argc, argv);
}
