// Experiment E20: parallel deterministic campaigns. The ROADMAP's scale
// argument (and the paper's E13 multicore-consolidation theme) says the
// stack should exploit host parallelism; seed-partitioned campaigns are
// embarrassingly parallel as long as aggregation is order-independent. The
// campaign runner gives every seed its own Simulator/VehicleSystem/
// MetricsRegistry and folds the shards in seed-index order, so the report
// is byte-identical for any worker count — this experiment proves that
// byte-equality across jobs = 1/2/4/8 and reports the wall-clock speedup
// (expect ~min(jobs, cores)x on a multi-core host; exactly 1x on one core).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ev/campaign/campaign.h"
#include "ev/campaign/parallel.h"
#include "ev/config/scenario.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::campaign::CampaignOptions;
using ev::campaign::CampaignResult;

constexpr int kSeeds = 8;

ev::config::ScenarioSpec campaign_scenario() {
  ev::config::ScenarioSpec spec;
  spec.name = "e20-campaign";
  spec.drive.cycle = ev::config::CycleKind::kUrban;
  spec.subsystems.obs = true;  // exercise the per-shard registry merge path
  spec.subsystems.faults = true;
  spec.subsystems.health = true;
  return spec;
}

std::string run_with_jobs(int jobs, double* wall_s) {
  const CampaignOptions options{{/*first=*/1, /*stride=*/1, kSeeds}, jobs};
  const auto begin = std::chrono::steady_clock::now();
  const CampaignResult result = run_scenario_campaign(campaign_scenario(), options);
  const auto end = std::chrono::steady_clock::now();
  *wall_s = std::chrono::duration<double>(end - begin).count();
  return ev::campaign::campaign_json(result);
}

void run_experiment() {
  std::puts("E20 — parallel deterministic campaign: one scenario, an 8-seed "
            "ladder, jobs = 1/2/4/8\n");
  std::printf("host hardware threads: %d\n\n",
              ev::campaign::resolve_jobs(0, 1 << 30));

  ev::util::Table table("jobs sweep (same 8-seed campaign, byte-compared reports)",
                        {"jobs", "wall", "speedup", "report identical"});
  double serial_s = 0.0;
  std::string reference;
  bool all_identical = true;
  for (const int jobs : {1, 2, 4, 8}) {
    double wall_s = 0.0;
    const std::string json = run_with_jobs(jobs, &wall_s);
    if (jobs == 1) {
      serial_s = wall_s;
      reference = json;
    }
    const bool identical = json == reference;
    all_identical = all_identical && identical;
    table.add_row({std::to_string(jobs), ev::util::fmt(wall_s, 2) + " s",
                   ev::util::fmt(serial_s / wall_s, 2) + "x",
                   identical ? "yes" : "NO"});
  }
  table.print();

  // Wall-clock figures are host-dependent and stay on stdout; the exported
  // snapshot carries only the deterministic outcome of the sweep.
  evbench::set_gauge("e20.seeds", kSeeds);
  evbench::set_gauge("e20.jobs_reports_identical", all_identical ? 1.0 : 0.0);

  std::printf("\nreports byte-identical across jobs 1/2/4/8: %s\n",
              all_identical ? "yes" : "NO");
  std::puts("expected shape: per-seed runs are pure functions of (spec, seed) "
            "and the fold order is fixed, so the campaign report never depends "
            "on the worker count; wall-clock drops ~linearly until the seed "
            "count or the core count saturates.\n");
}

void bm_campaign(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const ev::config::ScenarioSpec spec = campaign_scenario();
  for (auto _ : state) {
    const CampaignOptions options{{1, 1, kSeeds}, jobs};
    benchmark::DoNotOptimize(run_scenario_campaign(spec, options));
  }
}
BENCHMARK(bm_campaign)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void bm_parallel_for_overhead(benchmark::State& state) {
  // Pool spin-up + drain for an empty task fan: the fixed cost a campaign
  // pays before any simulation work happens.
  for (auto _ : state)
    ev::campaign::parallel_for(64, 4, [](int i) { benchmark::DoNotOptimize(i); });
}
BENCHMARK(bm_parallel_for_overhead)->Unit(benchmark::kMicrosecond);

void bm_registry_merge(benchmark::State& state) {
  // Cost of folding one shard registry into the aggregate (the serial
  // section of every campaign).
  ev::obs::MetricsRegistry shard;
  for (int i = 0; i < 32; ++i) {
    const std::string base = "m" + std::to_string(i);
    shard.add(shard.counter(base + ".count"), 7);
    shard.set(shard.gauge(base + ".peak"), 1.5 * i);
    const auto h = shard.histogram(base + ".latency", 0.0, 1e4, 64);
    for (int s = 0; s < 16; ++s) shard.observe(h, 100.0 * s);
  }
  for (auto _ : state) {
    ev::obs::MetricsRegistry merged;
    merged.merge(shard);
    merged.merge(shard);
    benchmark::DoNotOptimize(merged.size());
  }
}
BENCHMARK(bm_registry_merge)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e20_parallel_campaign", argc, argv);
}
