// Ablation experiments over evsys design choices (see DESIGN.md §5):
//  A1a  SoC-observer gain: drift correction vs noise sensitivity.
//  A1b  Balancing tolerance: equalization time vs energy wasted.
//  A1c  AVB credit-based-shaper idle slope: class-A goodput cap vs
//       best-effort throughput.
//  A1d  TT-Ethernet gate window width: protected latency vs bandwidth
//       sacrificed to the guard window.
//  A1e  Cache associativity: abstract WCET bound vs hardware cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include <algorithm>

#include "ev/battery/module.h"
#include "ev/bms/balancing.h"
#include "ev/bms/soc_estimator.h"
#include "ev/network/ethernet.h"
#include "ev/sim/simulator.h"
#include "ev/timing/analysis.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::sim::Simulator;
using ev::sim::Time;

// --------------------------------------------------------------- A1a ----

void ablation_observer_gain() {
  ev::util::Table table("A1a — voltage-corrected observer gain",
                        {"gain", "steady error vs bias", "noise-induced stddev"});
  auto curve = std::make_shared<const ev::battery::OcvCurve>(ev::battery::OcvCurve::nmc());
  for (double gain : {0.002, 0.01, 0.05, 0.2, 1.0}) {
    // Bias test: sensed current carries +0.05 A although the cell is idle.
    ev::bms::VoltageCorrectedEstimator biased(40.0, 0.5, curve, 0.0015, gain);
    const double v_true = curve->voltage(0.5);
    for (int i = 0; i < 7200; ++i) biased.update(0.05, v_true, 1.0);
    const double bias_error = std::abs(biased.soc() - 0.5);

    // Noise test: perfect current, 5 mV voltage noise.
    ev::bms::VoltageCorrectedEstimator noisy(40.0, 0.5, curve, 0.0015, gain);
    ev::util::Rng rng(5);
    ev::util::RunningStats wander;
    for (int i = 0; i < 7200; ++i) {
      noisy.update(0.0, v_true + rng.normal(0.0, 5e-3), 1.0);
      if (i > 3600) wander.add(noisy.soc());
    }
    table.add_row({ev::util::fmt(gain, 3), ev::util::fmt(bias_error, 5),
                   ev::util::fmt(wander.stddev(), 5)});
  }
  table.print();
  std::puts("shape: higher gain kills sensor-bias drift but amplifies voltage "
            "noise — the classic observer trade-off; the default 0.02 sits in "
            "the flat middle.\n");
}

// --------------------------------------------------------------- A1b ----

void ablation_balancing_tolerance() {
  ev::util::Table table("A1b — passive balancing tolerance",
                        {"tolerance", "time to converge", "energy bled"});
  for (double tol : {0.002, 0.005, 0.01, 0.02}) {
    ev::battery::CellParameters p;
    p.capacity_ah = 10.0;
    std::vector<ev::battery::Cell> cells;
    cells.emplace_back(p, ev::battery::OcvCurve::nmc(), 0.60);
    cells.emplace_back(p, ev::battery::OcvCurve::nmc(), 0.56);
    cells.emplace_back(p, ev::battery::OcvCurve::nmc(), 0.53);
    ev::battery::SeriesModule m(std::move(cells));
    ev::bms::PassiveBalancer policy(tol);
    double t_s = 0.0;
    while (t_s < 400000.0 && m.soc_spread() > tol) {
      std::vector<double> est;
      for (std::size_t i = 0; i < m.cell_count(); ++i) est.push_back(m.cell(i).soc());
      policy.decide(est, m, *std::min_element(est.begin(), est.end()));
      (void)m.step(0.0, 10.0);
      t_s += 10.0;
    }
    table.add_row({ev::util::fmt(tol, 3), ev::util::fmt(t_s / 3600.0, 1) + " h",
                   ev::util::fmt(m.bleed_energy_j() / 3600.0, 1) + " Wh"});
  }
  table.print();
  std::puts("shape: a tighter tolerance costs little extra energy (the "
            "imbalance itself fixes the bleed total) but extends the tail of "
            "the equalization time.\n");
}

// --------------------------------------------------------------- A1c ----

void ablation_cbs_slope() {
  ev::util::Table table("A1c — AVB credit-based shaper idle slope",
                        {"idle slope", "class-A goodput", "best-effort goodput"});
  for (double slope : {0.10, 0.30, 0.50, 0.75}) {
    Simulator sim;
    evbench::observe(sim);
    ev::network::EthernetSwitch sw(sim, "eth", 2);
    sw.attach(1, 0);
    sw.add_route(0x1, ev::network::EthRoute{{1}, ev::network::EthClass::kAvbClassA});
    sw.add_route(0x2, ev::network::EthRoute{{1}, ev::network::EthClass::kBestEffort});
    sw.enable_cbs(1, slope);
    std::size_t class_a_bytes = 0;
    std::size_t be_bytes = 0;
    sw.subscribe([&](const ev::network::Frame& f, Time) {
      if (f.id == 0x1)
        class_a_bytes += f.payload_size;
      else
        be_bytes += f.payload_size;
    });
    // Both classes offered at saturation.
    sim.schedule_periodic(Time{}, Time::us(60), [&] {
      if (sw.egress_depth(1) < 8) {
        ev::network::Frame a;
        a.id = 0x1;
        a.source = 1;
        a.payload_size = 800;
        (void)sw.send(a);
        ev::network::Frame b;
        b.id = 0x2;
        b.source = 1;
        b.payload_size = 800;
        (void)sw.send(b);
      }
    });
    sim.run_until(Time::ms(500));
    evbench::set_gauge("a1.cbs.class_a_mbit_s", class_a_bytes * 8.0 / 0.5 / 1e6);
    table.add_row({ev::util::fmt_pct(slope),
                   ev::util::fmt(class_a_bytes * 8.0 / 0.5 / 1e6, 1) + " Mbit/s",
                   ev::util::fmt(be_bytes * 8.0 / 0.5 / 1e6, 1) + " Mbit/s"});
  }
  table.print();
  std::puts("shape: the idle slope is a hard bandwidth contract — class A "
            "gets at most its reservation and best effort absorbs the rest.\n");
}

// --------------------------------------------------------------- A1d ----

void ablation_gate_window() {
  ev::util::Table table("A1d — TT gate window width (1 ms cycle)",
                        {"TT window", "TT mean latency", "best-effort goodput"});
  for (double window_us : {50.0, 100.0, 200.0, 400.0}) {
    Simulator sim;
    evbench::observe(sim);
    ev::network::EthernetSwitch sw(sim, "eth", 2);
    sw.attach(1, 0);
    sw.add_route(0x1, ev::network::EthRoute{{1}, ev::network::EthClass::kTimeTriggered});
    sw.add_route(0x2, ev::network::EthRoute{{1}, ev::network::EthClass::kBestEffort});
    ev::network::GateSchedule gs;
    gs.cycle_s = 1e-3;
    gs.windows.push_back({0.0, window_us * 1e-6, true});
    gs.windows.push_back({window_us * 1e-6, 1e-3 - window_us * 1e-6, false});
    sw.set_gate_schedule(1, gs);
    ev::util::SampleSeries tt_latency;
    std::size_t be_bytes = 0;
    sw.subscribe([&](const ev::network::Frame& f, Time at) {
      if (f.id == 0x1)
        tt_latency.add((at - f.created).to_seconds());
      else
        be_bytes += f.payload_size;
    });
    sim.schedule_periodic(Time{}, Time::ms(1), [&] {
      ev::network::Frame f;
      f.id = 0x1;
      f.source = 1;
      f.payload_size = 100;
      (void)sw.send(f);
    });
    sim.schedule_periodic(Time::us(7), Time::us(100), [&] {
      if (sw.egress_depth(1) < 8) {
        ev::network::Frame f;
        f.id = 0x2;
        f.source = 1;
        f.payload_size = 1500;
        (void)sw.send(f);
      }
    });
    sim.run_until(Time::ms(500));
    table.add_row({ev::util::fmt(window_us, 0) + " us",
                   ev::util::fmt(tt_latency.mean() * 1e6, 1) + " us",
                   ev::util::fmt(be_bytes * 8.0 / 0.5 / 1e6, 1) + " Mbit/s"});
  }
  table.print();
  std::puts("shape: the TT latency is set by the schedule, not the load; every "
            "microsecond of protected window is bandwidth taken from best "
            "effort — size the window to the TT demand, no larger.\n");
}

// --------------------------------------------------------------- A1e ----

void ablation_cache_ways() {
  ev::util::Table table("A1e — cache associativity vs WCET bound (LRU, 16 lines total)",
                        {"geometry", "WCET bound", "observed max"});
  ev::util::Rng gen_rng(3);
  ev::timing::ProgramGenConfig gen;
  gen.segments = 10;
  const ev::timing::Program prog = ev::timing::generate_program(gen, gen_rng);
  struct Geometry {
    std::size_t sets, ways;
  };
  for (const Geometry g : {Geometry{16, 1}, Geometry{8, 2}, Geometry{4, 4}, Geometry{2, 8}}) {
    const ev::timing::CacheConfig cfg = {g.sets, g.ways, 64, 1, 20,
                                         ev::timing::Replacement::kLru};
    const std::int64_t bound =
        ev::timing::wcet_bound_cycles(prog, cfg, ev::timing::must_analysis(prog, cfg));
    ev::util::Rng rng(9);
    const std::int64_t observed = ev::timing::observed_wcet_cycles(prog, cfg, 200, rng);
    table.add_row({std::to_string(g.sets) + "x" + std::to_string(g.ways),
                   std::to_string(bound), std::to_string(observed)});
  }
  table.print();
  std::puts("shape: associativity helps the *provable* bound (fewer conflict "
            "NC classifications) even when the observed behaviour barely "
            "moves — predictability and performance are different axes.\n");
}

void run_experiment() {
  std::puts("A1 — ablations over evsys design choices\n");
  ablation_observer_gain();
  ablation_balancing_tolerance();
  ablation_cbs_slope();
  ablation_gate_window();
  ablation_cache_ways();
}

void bm_observer_update(benchmark::State& state) {
  auto curve = std::make_shared<const ev::battery::OcvCurve>(ev::battery::OcvCurve::nmc());
  ev::bms::VoltageCorrectedEstimator est(40.0, 0.5, curve, 0.0015);
  for (auto _ : state) {
    est.update(10.0, 3.7, 0.1);
    benchmark::DoNotOptimize(est.soc());
  }
}
BENCHMARK(bm_observer_update);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("a1_ablations", argc, argv);
}
