// Experiment E3 (paper Fig. 3 + Section 2 "Electric Motor"): space-vector
// modulated PMSM drive. Verifies the figure's claim (three sinusoidal
// line voltages phase-shifted by 2*pi/3), then quantifies the open-IGBT
// fault story: waveform distortion, detection latency, and post-fault
// recovery with the four-switch reconfiguration.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "ev/motor/drive.h"
#include "ev/util/math.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::motor;
using ev::util::kTwoPi;

struct WaveMetrics {
  double thd = 0.0;
  double torque_ripple = 0.0;
  double fundamental_a = 0.0;
};

WaveMetrics measure(MotorDrive& drive, double speed_ref, double load, int periods) {
  drive.clear_recording();
  drive.set_recording(true);
  for (int k = 0; k < periods; ++k) drive.step(speed_ref, load);
  drive.set_recording(false);
  WaveMetrics m;
  const double fund = drive.machine().electrical_speed() / kTwoPi;
  m.thd = total_harmonic_distortion(drive.recorded_current_a(), drive.record_rate_hz(),
                                    fund);
  m.fundamental_a =
      harmonic_amplitude(drive.recorded_current_a(), drive.record_rate_hz(), fund, 1);
  double lo = 1e18, hi = -1e18, sum = 0.0;
  for (double t : drive.recorded_torque()) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    sum += t;
  }
  m.torque_ripple = (hi - lo) / std::max(sum / drive.recorded_torque().size(), 1.0);
  return m;
}

void run_experiment() {
  std::puts("E3 — PMSM + SVM inverter (Fig. 3) with IGBT open-fault tolerance\n");

  // --- Fig. 3 property: 2*pi/3 phase-shifted sinusoidal currents -----------
  MotorDrive drive;
  for (int k = 0; k < 30000; ++k) drive.step(200.0, 30.0);
  // Phase relationship via correlation of phase currents at steady state.
  drive.clear_recording();
  drive.set_recording(true);
  std::vector<double> ia, ib;
  for (int k = 0; k < 4000; ++k) {
    drive.step(200.0, 30.0);
    const Abc i = drive.machine().currents();
    ia.push_back(i.a);
    ib.push_back(i.b);
  }
  drive.set_recording(false);
  // cos of phase difference between a and b from normalized dot products.
  double aa = 0, bb = 0, ab = 0;
  for (std::size_t k = 0; k < ia.size(); ++k) {
    aa += ia[k] * ia[k];
    bb += ib[k] * ib[k];
    ab += ia[k] * ib[k];
  }
  const double cos_shift = ab / std::sqrt(aa * bb);
  std::printf("phase a/b correlation cos(delta) = %.3f   (ideal -0.5 for 2*pi/3 shift)\n\n",
              cos_shift);

  // --- fault sequence --------------------------------------------------------
  const WaveMetrics healthy = measure(drive, 200.0, 30.0, 8000);

  DriveConfig no_ft;
  no_ft.fault_tolerant = false;
  MotorDrive blind(no_ft);
  for (int k = 0; k < 30000; ++k) blind.step(200.0, 30.0);
  blind.inject_open_fault(Igbt::kUpperA);
  const WaveMetrics faulted = measure(blind, 200.0, 30.0, 8000);

  drive.inject_open_fault(Igbt::kUpperA);
  for (int k = 0; k < 60000 && drive.mode() != DriveMode::kReconfigured; ++k)
    drive.step(200.0, 30.0);
  for (int k = 0; k < 40000; ++k) drive.step(200.0, 30.0);
  const WaveMetrics recovered = measure(drive, 200.0, 30.0, 8000);

  ev::util::Table table("waveform quality across the fault sequence (200 rad/s, 30 Nm)",
                        {"condition", "current THD", "torque ripple",
                         "fundamental current"});
  table.add_row({"healthy 6-switch SVM", ev::util::fmt_pct(healthy.thd),
                 ev::util::fmt_pct(healthy.torque_ripple),
                 ev::util::fmt(healthy.fundamental_a, 1) + " A"});
  table.add_row({"open IGBT, no reaction", ev::util::fmt_pct(faulted.thd),
                 ev::util::fmt_pct(faulted.torque_ripple),
                 ev::util::fmt(faulted.fundamental_a, 1) + " A"});
  table.add_row({"reconfigured 4-switch", ev::util::fmt_pct(recovered.thd),
                 ev::util::fmt_pct(recovered.torque_ripple),
                 ev::util::fmt(recovered.fundamental_a, 1) + " A"});
  table.print();

  std::printf("fault detection latency: %.2f ms; speed after recovery: %.1f rad/s "
              "(command 200.0)\n",
              drive.detection_latency_s().value_or(-1) * 1e3,
              drive.machine().speed_rad_s());
  evbench::set_gauge("e3.recovered.thd", recovered.thd);
  evbench::set_gauge("e3.recovered.torque_ripple", recovered.torque_ripple);
  std::puts("expected shape: fault massively distorts current/torque; the "
            "reconfigured drive restores near-sinusoidal operation at reduced "
            "dc-link utilization.\n");
}

void bm_drive_period(benchmark::State& state) {
  MotorDrive drive;
  for (int k = 0; k < 1000; ++k) drive.step(100.0, 10.0);
  for (auto _ : state) drive.step(100.0, 10.0);
}
BENCHMARK(bm_drive_period)->Unit(benchmark::kMicrosecond);

void bm_svm_modulate(benchmark::State& state) {
  double theta = 0.0;
  for (auto _ : state) {
    theta += 0.01;
    const AlphaBeta v{200.0 * std::cos(theta), 200.0 * std::sin(theta)};
    benchmark::DoNotOptimize(SvmModulator::modulate(v, 400.0));
  }
}
BENCHMARK(bm_svm_modulate);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e3_motor_control", argc, argv);
}
