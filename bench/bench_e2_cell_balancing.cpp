// Experiment E2 (paper Fig. 2 + Section 2 "Battery Pack"): passive vs
// active cell balancing on the hierarchical BMS. Measures equalization
// time, energy dissipated vs transferred, resulting usable pack energy, and
// the driving-range consequence — the paper's claim that active balancing
// "avoids the waste of energy, increasing the driving range as well as the
// lifetime of the battery".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ev/bms/battery_manager.h"
#include "ev/powertrain/simulation.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::battery;
using namespace ev::bms;

struct BalancingOutcome {
  double hours_to_balance = 0.0;
  double wasted_wh = 0.0;
  double usable_wh = 0.0;
  double min_soc = 0.0;
};

BalancingOutcome run_balancing(BalancingKind kind, std::uint64_t seed) {
  ev::util::Rng rng(seed);
  PackConfig pc;
  pc.module_count = 4;
  pc.cells_per_module = 12;
  pc.initial_soc = 0.85;
  pc.soc_spread_sigma = 0.03;  // a visibly imbalanced pack
  Pack pack(pc, rng);

  BmsConfig bc;
  bc.balancing = kind;
  bc.initial_soc_estimate = 0.85;
  bc.estimator = EstimatorKind::kVoltageCorrected;
  BatteryManager bms(pack, bc);

  BalancingOutcome out;
  const double dt = 1.0;
  double t = 0.0;
  const double horizon_s = 200.0 * 3600.0;
  while (t < horizon_s) {
    (void)pack.step(0.0, dt);
    const BmsReport r = bms.step(pack, dt, rng);
    t += dt;
    if (r.balanced && pack.max_soc() - pack.min_soc() < 0.006) break;
    if (kind == BalancingKind::kNone) break;  // nothing will ever change
  }
  out.hours_to_balance = t / 3600.0;
  out.wasted_wh = (pack.total_bleed_energy_j() + pack.total_transfer_loss_j()) / 3600.0;
  out.usable_wh = pack.usable_energy_wh();
  out.min_soc = pack.min_soc();
  return out;
}

double range_with_usable(double usable_wh) {
  // Convert usable energy into urban driving range at the consumption the
  // E4 powertrain measures (~160 Wh/km with regeneration).
  constexpr double kUrbanWhPerKm = 160.0;
  return usable_wh / kUrbanWhPerKm;
}

void run_experiment() {
  std::puts("E2 — cell balancing: passive (bleed) vs active (charge transfer)\n");
  std::puts("pack: 48 series cells, 3% initial SoC spread sigma, idle during "
            "equalization\n");

  ev::util::Table table("balancing comparison (seed-averaged over 3 packs)",
                        {"policy", "equalization time", "energy wasted",
                         "usable pack energy", "weakest cell SoC", "urban range"});
  for (BalancingKind kind :
       {BalancingKind::kNone, BalancingKind::kPassive, BalancingKind::kActive}) {
    BalancingOutcome mean;
    const int runs = 3;
    // Per-seed packs equalize independently; the parallel campaign folds
    // their outcomes in seed order, so the averages match the serial sweep.
    evbench::run_seeded_campaign(
        1, 1, runs, evbench::default_jobs(),
        [kind](std::uint64_t seed, int) { return run_balancing(kind, seed); },
        [&](BalancingOutcome o, std::uint64_t, int) {
          mean.hours_to_balance += o.hours_to_balance / runs;
          mean.wasted_wh += o.wasted_wh / runs;
          mean.usable_wh += o.usable_wh / runs;
          mean.min_soc += o.min_soc / runs;
        });
    if (kind == BalancingKind::kActive) {
      evbench::set_gauge("e2.active.usable_wh", mean.usable_wh);
      evbench::set_gauge("e2.active.hours_to_balance", mean.hours_to_balance);
    }
    const char* name = kind == BalancingKind::kNone
                           ? "none"
                           : (kind == BalancingKind::kPassive ? "passive" : "active");
    table.add_row({name,
                   kind == BalancingKind::kNone
                       ? "-"
                       : ev::util::fmt(mean.hours_to_balance, 2) + " h",
                   ev::util::fmt(mean.wasted_wh, 1) + " Wh",
                   ev::util::fmt(mean.usable_wh, 0) + " Wh",
                   ev::util::fmt_pct(mean.min_soc),
                   ev::util::fmt(range_with_usable(mean.usable_wh), 1) + " km"});
  }
  table.print();
  std::puts("expected shape: active wastes only converter losses, lifts the "
            "weakest cell, and extends usable energy/range; passive burns the "
            "full imbalance in bleed resistors.\n");
}

void bm_bms_step(benchmark::State& state) {
  ev::util::Rng rng(9);
  PackConfig pc;
  Pack pack(pc, rng);
  BmsConfig bc;
  bc.balancing = BalancingKind::kActive;
  BatteryManager bms(pack, bc);
  for (auto _ : state) {
    (void)pack.step(50.0, 0.1);
    benchmark::DoNotOptimize(bms.step(pack, 0.1, rng));
  }
}
BENCHMARK(bm_bms_step)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e2_cell_balancing", argc, argv);
}
