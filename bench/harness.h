/// \file harness.h
/// Shared scaffolding for the experiment binaries: after printing the
/// experiment tables, each binary runs its registered google-benchmark
/// microbenchmarks with a short default measuring time (override with the
/// usual --benchmark_* flags).
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace evbench {

/// Initializes and runs google-benchmark. When the caller passed no
/// benchmark flags, a short --benchmark_min_time keeps the full harness
/// sweep fast.
inline int run_registered_benchmarks(int argc, char** argv) {
  std::vector<std::string> stored(argv, argv + argc);
  bool has_min_time = false;
  for (const std::string& s : stored)
    if (s.rfind("--benchmark_min_time", 0) == 0) has_min_time = true;
  if (!has_min_time) stored.push_back("--benchmark_min_time=0.05");

  std::vector<char*> args;
  args.reserve(stored.size());
  for (auto& s : stored) args.push_back(s.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace evbench
