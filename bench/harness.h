/// \file harness.h
/// Shared scaffolding for the experiment binaries. Each binary prints its
/// experiment tables, exports the observability snapshot accumulated while
/// doing so (BENCH_<experiment>.json — event counts, dispatch-latency stats,
/// subsystem gauges; plus a Chrome-trace file when spans were recorded), and
/// then runs its registered google-benchmark microbenchmarks with a short
/// default measuring time (override with the usual --benchmark_* flags).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "ev/campaign/parallel.h"
#include "ev/obs/export.h"
#include "ev/obs/metrics.h"
#include "ev/obs/sim_observer.h"
#include "ev/obs/span_trace.h"
#include "ev/sim/simulator.h"

namespace evbench {

/// Initializes and runs google-benchmark. When the caller passed no
/// benchmark flags, a short --benchmark_min_time keeps the full harness
/// sweep fast.
inline int run_registered_benchmarks(int argc, char** argv) {
  std::vector<std::string> stored(argv, argv + argc);
  bool has_min_time = false;
  for (const std::string& s : stored)
    if (s.rfind("--benchmark_min_time", 0) == 0) has_min_time = true;
  if (!has_min_time) stored.push_back("--benchmark_min_time=0.05");

  std::vector<char*> args;
  args.reserve(stored.size());
  for (auto& s : stored) args.push_back(s.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// The binary's metric registry. Everything recorded here before finish()
/// lands in the exported snapshot.
inline ev::obs::MetricsRegistry& metrics() {
  static ev::obs::MetricsRegistry registry;
  return registry;
}

/// The binary's span sink (exported as a Chrome trace when non-empty).
inline ev::obs::TraceLog& trace() {
  static ev::obs::TraceLog log;
  return log;
}

/// The shared simulator observer feeding metrics().
inline ev::obs::SimObserver& sim_observer() {
  static ev::obs::SimObserver observer(metrics());
  return observer;
}

/// Attaches the shared observer to \p sim: its event count, dispatch-delay
/// distribution, and queue-depth peak then accumulate into metrics().
inline void observe(ev::sim::Simulator& sim) { sim.set_observer(&sim_observer()); }

/// Records the experiment-specific gauge \p name = \p value.
inline void set_gauge(std::string_view name, double value) {
  metrics().set(metrics().gauge(name), value);
}

/// Runs \p body once per rung of a deterministic arithmetic seed ladder:
/// seed_i = first + i * stride for i in [0, runs). This is the campaign
/// shape every seed-averaged experiment table shares — a fixed run count
/// with seeds derived only from the ladder, so the whole sweep is a pure
/// function of (first, stride, runs). \p body receives (seed, run_index).
template <typename Body>
inline void run_seeded_campaign(std::uint64_t first, std::uint64_t stride, int runs,
                                Body&& body) {
  for (int i = 0; i < runs; ++i)
    body(first + static_cast<std::uint64_t>(i) * stride, i);
}

/// Worker thread count for parallel campaigns: EVSYS_BENCH_JOBS when set,
/// otherwise one per hardware thread.
inline int default_jobs() {
  if (const char* env = std::getenv("EVSYS_BENCH_JOBS"); env != nullptr && *env != '\0')
    return std::atoi(env);
  return 0;  // resolve_jobs turns 0 into hardware_concurrency
}

/// Parallel overload of the seed-ladder campaign. \p worker(seed, index)
/// runs on up to \p jobs threads (0 = one per hardware thread) and must be
/// a pure function of its arguments — no shared mutable state, no touching
/// metrics()/trace(). Its returned values are handed to
/// \p fold(result, seed, index) on the calling thread in seed-index order,
/// so accumulated means, tables, and metrics come out byte-identical for
/// any jobs value (and identical to the serial overload).
template <typename Worker, typename Fold>
inline void run_seeded_campaign(std::uint64_t first, std::uint64_t stride, int runs,
                                int jobs, Worker&& worker, Fold&& fold) {
  using Result = std::invoke_result_t<Worker&, std::uint64_t, int>;
  std::vector<std::optional<Result>> results(static_cast<std::size_t>(runs));
  ev::campaign::parallel_for(runs, jobs, [&](int i) {
    results[static_cast<std::size_t>(i)].emplace(
        worker(first + static_cast<std::uint64_t>(i) * stride, i));
  });
  for (int i = 0; i < runs; ++i)
    fold(std::move(*results[static_cast<std::size_t>(i)]),
         first + static_cast<std::uint64_t>(i) * stride, i);
}

/// Exports the metrics snapshot to BENCH_<experiment>.json (and the span
/// trace to BENCH_<experiment>.trace.json when spans were recorded).
/// EVSYS_BENCH_METRICS_DIR relocates the files; EVSYS_BENCH_METRICS=0
/// disables emission. Returns false when disabled or the write failed.
inline bool export_metrics(const std::string& experiment) {
  const char* enabled = std::getenv("EVSYS_BENCH_METRICS");
  if (enabled != nullptr && std::string_view(enabled) == "0") return false;
  const char* dir = std::getenv("EVSYS_BENCH_METRICS_DIR");
  const std::string base =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
      "BENCH_" + experiment;
  const bool ok = ev::obs::write_metrics_json_file(metrics(), base + ".json");
  if (ok)
    std::printf("[obs] metrics snapshot: %s.json\n", base.c_str());
  else
    std::fprintf(stderr, "[obs] could not write %s.json\n", base.c_str());
  if (!trace().spans().empty() &&
      ev::obs::write_chrome_trace_file(trace(), base + ".trace.json"))
    std::printf("[obs] chrome trace: %s.trace.json\n", base.c_str());
  return ok;
}

/// Standard experiment epilogue: export the observability snapshot captured
/// by run_experiment(), then run the microbenchmarks. Exporting first keeps
/// the snapshot deterministic — benchmark iteration counts never feed it.
inline int finish(const std::string& experiment, int argc, char** argv) {
  (void)sim_observer();  // every snapshot carries the standard sim.* metrics
  export_metrics(experiment);
  return run_registered_benchmarks(argc, argv);
}

}  // namespace evbench
