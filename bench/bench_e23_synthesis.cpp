// Experiment E23: the design-space synthesizer and its incremental fitness
// core. Two claims are measured. First, the incremental FitnessEvaluator
// must make candidate evaluation cheap: re-evaluating after one architecture
// move (a CAN id swap, a frame re-placement, a FlexRay slot swap) has to be
// at least ~5x faster than the full re-analysis `evsys check` performs,
// while rendering byte-identical reports — otherwise the annealer is just a
// slow way to call the analyzer. Second, synthesized designs must be sound
// end to end: for a seed ladder of `evsys synthesize` runs over the
// overloaded fixture, every emitted scenario must pass static analysis
// cleanly AND, when actually simulated, every observed maximum must respect
// the synthesized design's static bounds (the E19 invariant, now applied to
// machine-generated architectures). Any violation fails the binary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ev/analysis/analyzer.h"
#include "ev/analysis/fitness.h"
#include "ev/analysis/model.h"
#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/obs/metrics.h"
#include "ev/synthesis/synthesis.h"
#include "ev/util/stats.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::analysis::Diagnostic;
using ev::analysis::FitnessEvaluator;
using ev::analysis::Report;
using ev::config::ScenarioSpec;

// tests/data/overloaded.scn: 20x nominal traffic, every subsystem on.
ScenarioSpec overloaded_spec() {
  ScenarioSpec spec;
  spec.name = "overloaded";
  spec.subsystems.obs = true;
  spec.subsystems.health = true;
  spec.subsystems.security = true;
  spec.network.load_scale = 20.0;
  return spec;
}

ScenarioSpec nominal_spec() {
  ScenarioSpec spec;
  spec.name = "e23-nominal";
  spec.subsystems.obs = true;
  spec.subsystems.health = true;
  spec.subsystems.security = true;
  return spec;
}

double wall_seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best of three — wall-time gauges feed the perf gate, so damp scheduler
/// noise the same way the E21 hot-path bench does.
double best_wall_seconds(const std::function<void()>& body) {
  double best = wall_seconds(body);
  for (int i = 0; i < 2; ++i) best = std::min(best, wall_seconds(body));
  return best;
}

/// Source-frame index by Fig. 1 base id.
std::size_t frame_by_base(const ev::analysis::VehicleModel& model,
                          std::uint32_t base_id) {
  for (std::size_t f = 0; f < model.frames.size(); ++f)
    if (!model.frames[f].routed && model.frames[f].base_id == base_id) return f;
  return 0;
}

/// The deterministic move tape both measurement loops replay: CAN id swaps
/// on the comfort bus, a body frame bouncing between the CAN buses, and a
/// chassis slot swap — the annealer's working set.
void apply_tape_move(FitnessEvaluator& evaluator, int step) {
  const ev::analysis::VehicleModel& model = evaluator.model();
  switch (step % 4) {
    case 0: {  // swap the wire ids of 0x300 and 0x302 (via a temp id)
      const std::size_t a = frame_by_base(model, 0x300);
      const std::size_t b = frame_by_base(model, 0x302);
      const std::uint32_t id_a = model.frames[a].id;
      const std::uint32_t id_b = model.frames[b].id;
      evaluator.renumber_frame(a, 0x7f0);
      evaluator.renumber_frame(b, id_a);
      evaluator.renumber_frame(a, id_b);
      break;
    }
    case 1:  // bounce a body frame onto the safety bus...
      evaluator.move_frame(frame_by_base(model, 0x010), 3);
      break;
    case 2:  // ...and back home to LIN
      evaluator.move_frame(frame_by_base(model, 0x010), 0);
      break;
    default: {  // swap two chassis static slots
      std::map<std::uint32_t, std::size_t> slots = model.buses[4].fr_static_slot;
      std::swap(slots.at(0x100), slots.at(0x105));
      evaluator.set_fr_slots(slots);
      break;
    }
  }
}

/// Part 1 — incremental re-evaluation vs full re-analysis per move.
struct FitnessComparison {
  double incremental_s = 0.0;
  double full_s = 0.0;
  double speedup = 0.0;
  std::uint64_t incremental_passes = 0;
  std::uint64_t full_passes = 0;
  bool reports_match = true;
};

FitnessComparison compare_fitness_paths() {
  const ScenarioSpec spec = nominal_spec();
  const int moves = 200;

  FitnessComparison result;

  // Correctness first, untimed: after every tape move the incremental
  // report must equal the from-scratch analyzer's byte for byte.
  {
    FitnessEvaluator evaluator(ev::analysis::extract_model(spec));
    evaluator.evaluate();
    for (int step = 0; step < 8; ++step) {
      apply_tape_move(evaluator, step);
      const std::string incremental = ev::analysis::report_json(evaluator.report());
      const std::string full =
          ev::analysis::report_json(ev::analysis::analyze(evaluator.model()));
      if (incremental != full) result.reports_match = false;
    }
  }

  // Incremental: one persistent evaluator, dirty-closure re-evaluation.
  result.incremental_s = best_wall_seconds([&spec, moves, &result] {
    FitnessEvaluator evaluator(ev::analysis::extract_model(spec));
    evaluator.evaluate();
    const std::uint64_t settled = evaluator.bus_pass_evals();
    for (int step = 0; step < moves; ++step) {
      apply_tape_move(evaluator, step);
      benchmark::DoNotOptimize(evaluator.evaluate());
    }
    result.incremental_passes = evaluator.bus_pass_evals() - settled;
  });

  // Full: same tape, but every move pays what `evsys check` pays — a
  // from-scratch analyze() with nothing memoized, strings rendered and all.
  result.full_s = best_wall_seconds([&spec, moves, &result] {
    FitnessEvaluator mutator(ev::analysis::extract_model(spec));
    mutator.evaluate();
    for (int step = 0; step < moves; ++step) {
      apply_tape_move(mutator, step);
      benchmark::DoNotOptimize(ev::analysis::analyze(mutator.model()));
    }
    result.full_passes = static_cast<std::uint64_t>(moves) *
                         mutator.model().buses.size() * 3;
  });

  result.speedup = result.full_s / result.incremental_s;
  return result;
}

/// Part 2 — seed ladder of synthesized designs: static cleanliness plus the
/// E19 bound-vs-observation invariant under actual simulation.
struct LadderRow {
  std::uint64_t seed = 0;
  bool feasible = false;
  int check_errors = 0;
  int check_warnings = 0;
  std::size_t comparisons = 0;
  int bound_violations = 0;
  double min_margin_us = 1e18;
  double load_scale = 0.0;
};

LadderRow validate_synthesized(std::uint64_t seed) {
  LadderRow row;
  row.seed = seed;

  ev::synthesis::SynthesisOptions options;
  options.seed = seed;
  options.iters = 15;
  const ev::synthesis::SynthesisResult synthesized =
      ev::synthesis::synthesize(overloaded_spec(), options);
  row.feasible = synthesized.feasible;
  row.load_scale = synthesized.load_scale;

  const ev::analysis::VehicleModel model =
      ev::analysis::extract_model(synthesized.spec);
  const Report report = ev::analysis::analyze(model);
  row.check_errors =
      static_cast<int>(report.count(ev::analysis::Severity::kError));
  row.check_warnings =
      static_cast<int>(report.count(ev::analysis::Severity::kWarning));

  // Simulate the synthesized architecture and compare every observed
  // maximum against its static bound (the E19 soundness invariant).
  std::unique_ptr<ev::core::VehicleSystem> vehicle;
  (void)ev::core::run_scenario(synthesized.spec, &vehicle);
  auto* obs = vehicle->find_subsystem<ev::core::ObservabilitySubsystem>();
  ev::obs::MetricsRegistry& metrics = obs->metrics();

  const auto compare = [&](const std::string& histogram, double bound_us) {
    const ev::obs::MetricId id = metrics.find(histogram);
    if (id == ev::obs::kInvalidId) return;
    const ev::util::RunningStats& stats = metrics.histogram_stats(id);
    if (stats.count() == 0) return;
    ++row.comparisons;
    const double margin = bound_us - stats.max();
    row.min_margin_us = std::min(row.min_margin_us, margin);
    if (margin < 0.0) ++row.bound_violations;
  };

  for (const ev::analysis::BusModel& bus : model.buses) {
    const Diagnostic* d = report.find("rta.bus", bus.scenario_name);
    if (d == nullptr) continue;
    compare("net." + bus.display_name + ".frame_latency_us", d->bound);
  }
  double pubsub_bound = 0.0;
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule_id == "rta.pubsub") pubsub_bound = std::max(pubsub_bound, d.bound);
  if (pubsub_bound > 0.0)
    compare("mw." + model.app.ecu_name + ".pubsub.delivery_latency_us",
            pubsub_bound);
  if (const Diagnostic* d = report.find("gw.delay", "central-gateway"))
    compare("net.gw.central-gateway.hop_latency_us", d->bound);
  return row;
}

int run_experiment() {
  std::puts("E23 — design-space synthesis: incremental fitness vs full "
            "re-analysis, and soundness of synthesized architectures\n");

  // ---- part 1: the incremental fitness core --------------------------------
  const FitnessComparison fitness = compare_fitness_paths();
  ev::util::Table part1("fitness evaluation per architecture move (200-move tape)",
                        {"path", "wall", "bus passes", "reports"});
  part1.add_row({"full re-analysis", ev::util::fmt(fitness.full_s * 1e3, 1) + " ms",
                 std::to_string(fitness.full_passes),
                 fitness.reports_match ? "identical" : "DIVERGED"});
  part1.add_row({"incremental", ev::util::fmt(fitness.incremental_s * 1e3, 1) + " ms",
                 std::to_string(fitness.incremental_passes),
                 fitness.reports_match ? "identical" : "DIVERGED"});
  part1.add_row({"speedup", ev::util::fmt(fitness.speedup, 2) + "x", "", ""});
  part1.print();

  int violations = fitness.reports_match ? 0 : 1;

  // ---- part 2: synthesized designs under simulation ------------------------
  ev::util::Table part2("seed ladder: synthesize -> check -> simulate",
                        {"seed", "feasible", "load", "errors", "warnings",
                         "bounds checked", "violations", "min margin"});
  std::size_t compared = 0;
  int check_failures = 0;
  int bound_violations = 0;
  evbench::run_seeded_campaign(1, 1, 3, [&](std::uint64_t seed, int) {
    const LadderRow row = validate_synthesized(seed);
    if (!row.feasible || row.check_errors > 0 || row.check_warnings > 0)
      ++check_failures;
    bound_violations += row.bound_violations;
    compared += row.comparisons;
    part2.add_row({std::to_string(row.seed), row.feasible ? "yes" : "NO",
                   ev::util::fmt(row.load_scale, 2),
                   std::to_string(row.check_errors),
                   std::to_string(row.check_warnings),
                   std::to_string(row.comparisons),
                   std::to_string(row.bound_violations),
                   ev::util::fmt(row.min_margin_us, 1) + " us"});
  });
  part2.print();
  violations += check_failures + bound_violations;

  // One representative end-to-end synthesis for the perf gate.
  const double synthesis_s = best_wall_seconds([] {
    ev::synthesis::SynthesisOptions options;
    options.seed = 1;
    options.iters = 15;
    benchmark::DoNotOptimize(
        ev::synthesis::synthesize(overloaded_spec(), options));
  });

  evbench::set_gauge("e23.fitness.incremental_wall_s", fitness.incremental_s);
  evbench::set_gauge("e23.fitness.full_wall_s", fitness.full_s);
  evbench::set_gauge("e23.fitness.speedup", fitness.speedup);
  evbench::set_gauge("e23.fitness.reports_match", fitness.reports_match ? 1 : 0);
  evbench::set_gauge("e23.speedup_target_met", fitness.speedup >= 5.0 ? 1 : 0);
  evbench::set_gauge("e23.synthesis.wall_s", synthesis_s);
  evbench::set_gauge("e23.ladder.check_failures", check_failures);
  evbench::set_gauge("e23.ladder.comparisons", static_cast<double>(compared));
  evbench::set_gauge("e23.ladder.bound_violations", bound_violations);

  std::printf("\nincremental speedup: %.2fx (target >= 5x), synthesized "
              "designs: %d check failure(s), %d bound violation(s) over %zu "
              "comparisons\n",
              fitness.speedup, check_failures, bound_violations, compared);
  std::puts("expected shape: identical reports at >= 5x speedup — memoized "
            "per-bus outcomes make a candidate move cost only its dirty "
            "closure — and zero violations: machine-synthesized designs obey "
            "the same static-bound soundness contract as hand-written ones.\n");
  return violations;
}

void bm_incremental_move_eval(benchmark::State& state) {
  FitnessEvaluator evaluator(ev::analysis::extract_model(nominal_spec()));
  evaluator.evaluate();
  int step = 0;
  for (auto _ : state) {
    apply_tape_move(evaluator, step++);
    benchmark::DoNotOptimize(evaluator.evaluate());
  }
}
BENCHMARK(bm_incremental_move_eval)->Unit(benchmark::kMicrosecond);

void bm_full_reanalysis_per_move(benchmark::State& state) {
  FitnessEvaluator evaluator(ev::analysis::extract_model(nominal_spec()));
  evaluator.evaluate();
  int step = 0;
  for (auto _ : state) {
    apply_tape_move(evaluator, step++);
    benchmark::DoNotOptimize(ev::analysis::analyze(evaluator.model()));
  }
}
BENCHMARK(bm_full_reanalysis_per_move)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int violations = run_experiment();
  const int rc = evbench::finish("e23_synthesis", argc, argv);
  return violations > 0 ? 1 : rc;
}
