// Experiment E17: deterministic system-wide fault injection with health
// monitoring and graceful degradation. The paper's architecture argument is
// that dependability must be a *system* property: faults arise in sensors,
// buses, and software partitions, are detected by each domain's regular
// mechanism (debounced envelope monitoring, CRC checks, heartbeat
// watchdogs), and are answered by a coordinated vehicle-level reaction
// rather than an immediate shutdown. This experiment drives one seeded
// FaultPlan through all three injection layers and reports, per fault
// class, how the detection chain and the DegradationManager responded.
// The whole campaign is a pure function of the seed: same seed, same
// BENCH_e17_fault_injection.json, byte for byte.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ev/bms/battery_manager.h"
#include "ev/faults/degradation.h"
#include "ev/faults/fault_plan.h"
#include "ev/faults/network_faults.h"
#include "ev/middleware/health.h"
#include "ev/middleware/middleware.h"
#include "ev/network/can.h"
#include "ev/sim/simulator.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using ev::faults::DegradationManager;
using ev::faults::DriveMode;
using ev::faults::FaultPlan;
using ev::sim::Simulator;
using ev::sim::Time;

constexpr std::uint64_t kSeed = 17;

struct Transition {
  double t_s;
  DriveMode from;
  DriveMode to;
  std::string cause;
};

struct CampaignReport {
  std::vector<Transition> transitions;
  std::vector<ev::faults::Injection> injections;
  DriveMode final_mode = DriveMode::kNormal;
  std::uint64_t restarts = 0;
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t watcher_reports = 0;
  std::size_t bus_dropped = 0;
  std::size_t bus_corrupted = 0;
  std::size_t bus_busoff_rejected = 0;
  std::size_t bms_faults = 0;
};

/// One full campaign: BMS sensor faults, a partition crash and a hang, and
/// bus drop/corruption/bus-off plus a babbling idiot, all from one plan.
CampaignReport run_campaign(std::uint64_t seed, ev::obs::MetricsRegistry* metrics) {
  Simulator sim;
  if (metrics) evbench::observe(sim);
  CampaignReport report;

  DegradationManager deg(sim);
  if (metrics) deg.attach_observer(*metrics);
  deg.set_listener([&](DriveMode from, DriveMode to, const std::string& cause) {
    report.transitions.push_back(Transition{sim.now().to_seconds(), from, to, cause});
  });

  // --- network layer ------------------------------------------------------
  ev::network::CanBus can(sim, "body_can", 125e3);
  if (metrics) can.attach_observer(*metrics);
  sim.schedule_periodic(Time::us(700), Time::ms(10), [&] {
    ev::network::Frame f;
    f.id = 0x300;
    f.source = 4;
    (void)can.send(f);
  });
  ev::faults::NetworkHealthWatcher watcher(sim, deg,
                                           {/*poll_period_us=*/5000,
                                            /*utilization_limit=*/0.5});
  watcher.watch(can);
  if (metrics) watcher.attach_observer(*metrics);
  watcher.start();
  ev::faults::BabblingIdiot idiot(sim, can, /*id=*/0, /*period_us=*/250);

  // --- middleware layer ---------------------------------------------------
  ev::middleware::Middleware mw(sim, "vcu", 10000);
  const std::size_t p_drive = mw.create_partition("drive", 3000, 2);
  const std::size_t p_comfort = mw.create_partition("comfort", 3000, 0);
  mw.deploy(p_drive, ev::middleware::Runnable{
                         "ctrl", 10000, 200,
                         [] { return ev::middleware::RunOutcome::kOk; }});
  ev::middleware::HealthMonitor health(sim, mw);
  if (metrics) health.attach_observer(*metrics);
  health.set_listener([&](std::size_t, ev::middleware::HealthEvent event, Time) {
    if (event == ev::middleware::HealthEvent::kRestart) deg.on_partition_restart();
  });
  health.start();
  mw.start();

  // --- battery/BMS layer --------------------------------------------------
  ev::util::Rng rng(seed + 1);
  ev::battery::PackConfig pc;
  pc.initial_soc = 0.7;
  ev::battery::Pack pack(pc, rng);
  ev::bms::BmsConfig bc;
  bc.initial_soc_estimate = 0.7;
  ev::bms::BatteryManager bms(pack, bc);
  sim.schedule_periodic(Time::ms(10), Time::ms(10), [&] {
    (void)pack.step(12.0, 0.01);
    deg.on_bms(bms.step(pack, 0.01, rng).action);
  });

  // --- the fault plan -----------------------------------------------------
  FaultPlan plan(seed);
  plan.set_degradation(&deg);
  if (metrics) plan.attach_observer(*metrics);

  plan.add(Time::ms(40), "can.drop_burst", [&] { can.inject_drop(5); });
  plan.add(Time::ms(80), "can.corruption", [&] { can.inject_corruption(3); });
  plan.add(Time::ms(120), "mw.partition_crash",
           [&] { mw.partition(p_drive).inject_crash(); });
  plan.add(Time::ms(200), "can.bus_off", [&] { can.inject_bus_off(Time::ms(8)); });
  plan.add(Time::us(255000), "bms.stuck_voltage_sensor", [&] {
    ev::battery::SensorFault stuck;
    stuck.mode = ev::battery::SensorFaultMode::kStuckAt;
    stuck.stuck_value = 5.0;
    bms.inject_voltage_sensor_fault(2, stuck);
  });
  plan.add(Time::ms(320), "mw.partition_hang",
           [&] { mw.partition(p_comfort).inject_hang(10); });
  plan.add(Time::ms(400), "can.babbling_idiot", [&] { idiot.start(); });
  plan.arm(sim);

  sim.run_until(Time::ms(600));

  report.injections = plan.injections();
  report.final_mode = deg.mode();
  report.restarts = health.restarts();
  report.heartbeat_misses = health.heartbeat_misses();
  report.watcher_reports = watcher.faults_reported();
  report.bus_dropped = can.fault_dropped_count();
  report.bus_corrupted = can.fault_corrupted_count();
  report.bus_busoff_rejected = can.busoff_rejected_count();
  report.bms_faults = bms.safety().faults().size();
  // The campaign is over: detach the observer so the RAII teardown of the
  // actors below (their owned periodics cancel on destruction) stays out of
  // the exported kernel counters.
  sim.set_observer(nullptr);
  return report;
}

void injection_table(const CampaignReport& r) {
  ev::util::Table table("injected faults (seed 17, one deterministic plan)",
                        {"t [ms]", "fault", "layer"});
  for (const ev::faults::Injection& inj : r.injections) {
    const std::string layer = inj.label.substr(0, inj.label.find('.'));
    char t[32];
    std::snprintf(t, sizeof t, "%.1f", inj.at.to_seconds() * 1e3);
    table.add_row({t, inj.label, layer});
  }
  table.print();
}

void reaction_table(const CampaignReport& r) {
  ev::util::Table table("mode-machine reactions", {"t [ms]", "from", "to", "cause"});
  for (const Transition& tr : r.transitions) {
    char t[32];
    std::snprintf(t, sizeof t, "%.1f", tr.t_s * 1e3);
    table.add_row({t, ev::faults::to_string(tr.from), ev::faults::to_string(tr.to),
                   tr.cause});
  }
  table.print();
}

void detection_table(const CampaignReport& r) {
  ev::util::Table table("per-class detection accounting", {"detector", "count"});
  table.add_row({"bus frames dropped (injected)", std::to_string(r.bus_dropped)});
  table.add_row({"bus frames CRC-discarded", std::to_string(r.bus_corrupted)});
  table.add_row({"sends rejected in bus-off", std::to_string(r.bus_busoff_rejected)});
  table.add_row({"network fault episodes reported", std::to_string(r.watcher_reports)});
  table.add_row({"heartbeat misses", std::to_string(r.heartbeat_misses)});
  table.add_row({"watchdog partition restarts", std::to_string(r.restarts)});
  table.add_row({"BMS faults latched", std::to_string(r.bms_faults)});
  table.print();
}

void run_experiment() {
  std::puts("E17 — deterministic fault injection, health monitoring, and "
            "graceful degradation\n");
  const CampaignReport r = run_campaign(kSeed, &evbench::metrics());
  injection_table(r);
  reaction_table(r);
  detection_table(r);

  // The injection times are fixed; the seed only perturbs the plan's
  // bookkeeping and the battery draw. Sweeping it shows the reaction chain,
  // not the randomness, decides the outcome.
  ev::util::Table sweep("seed sweep (same plan, three seeds)",
                        {"seed", "final mode", "transitions", "restarts"});
  // Each sweep rung builds its own simulator stack (no shared registry —
  // metrics stay with the seed-17 headline campaign above), so the rungs
  // fan out across workers and fold back into the table in seed order.
  evbench::run_seeded_campaign(
      kSeed, 1, 3, evbench::default_jobs(),
      [](std::uint64_t seed, int) { return run_campaign(seed, nullptr); },
      [&](CampaignReport s, std::uint64_t seed, int) {
        sweep.add_row({std::to_string(seed), ev::faults::to_string(s.final_mode),
                       std::to_string(s.transitions.size()),
                       std::to_string(s.restarts)});
      });
  sweep.print();

  evbench::set_gauge("e17.final_mode",
                     static_cast<double>(static_cast<std::uint8_t>(r.final_mode)));
  evbench::set_gauge("e17.transitions", static_cast<double>(r.transitions.size()));
  evbench::set_gauge("e17.injections", static_cast<double>(r.injections.size()));
  evbench::set_gauge("e17.partition_restarts", static_cast<double>(r.restarts));

  std::printf("final drive mode: %s (after %zu injected faults, %zu mode "
              "transitions)\n",
              ev::faults::to_string(r.final_mode).c_str(), r.injections.size(),
              r.transitions.size());
  std::puts("expected shape: every fault class is caught by its own "
            "detector — CRC discard for corruption, heartbeat silence for "
            "crash/hang, debounced envelope violation for the stuck sensor, "
            "utilization/bus-off episodes for the babbling idiot — and the "
            "vehicle degrades stepwise (normal -> derated -> limp-home -> "
            "safe-stop) instead of failing on the first fault.\n");
}

// Happy-path cost of the fault gate: a send/deliver cycle with no fault
// armed pays one untaken branch — this stays in the same ballpark as the
// pre-fault-model bus.
void bm_bus_send_no_faults(benchmark::State& state) {
  Simulator sim;
  ev::network::CanBus can(sim, "can", 500e3);
  can.subscribe([](const ev::network::Frame&, Time) {});
  std::uint32_t id = 1;
  for (auto _ : state) {
    ev::network::Frame f;
    f.id = id++ & 0x7ff;
    f.source = 1;
    benchmark::DoNotOptimize(can.send(f));
    sim.run();
  }
}
BENCHMARK(bm_bus_send_no_faults);

void bm_full_campaign(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_campaign(kSeed, nullptr));
}
BENCHMARK(bm_full_campaign)->Unit(benchmark::kMillisecond);

void bm_health_check_cycle(benchmark::State& state) {
  Simulator sim;
  ev::middleware::Middleware mw(sim, "ecu", 10000);
  for (int i = 0; i < 8; ++i)
    (void)mw.create_partition("p" + std::to_string(i), 1000);
  ev::middleware::HealthMonitor health(sim, mw);
  health.start();
  mw.start();
  Time horizon = Time::ms(10);
  for (auto _ : state) {
    sim.run_until(horizon);
    horizon = horizon + Time::ms(10);
  }
}
BENCHMARK(bm_health_check_cycle);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e17_fault_injection", argc, argv);
}
