// Experiment E6 (paper Section 3.1, refs [17][18]): scalability of
// time-triggered schedule synthesis. Monolithic global synthesis is compared
// against modular schedule integration (independent local schedules + one
// shift per subsystem) as the number of subsystems grows — search effort,
// wall-clock time, and schedulability.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "ev/scheduling/integration.h"
#include "ev/scheduling/synthesis.h"
#include "ev/util/table.h"
#include "harness.h"

namespace {

using namespace ev::scheduling;
using Clock = std::chrono::steady_clock;

std::vector<Subsystem> make_subsystems(int count, int tasks_each) {
  std::vector<Subsystem> subs;
  for (int s = 0; s < count; ++s) {
    Subsystem sub;
    sub.name = "component-" + std::to_string(s);
    for (int t = 0; t < tasks_each; ++t) {
      Activity a;
      a.id = t;
      a.name = sub.name + "-task" + std::to_string(t);
      a.resource = s;  // each component has its own ECU...
      a.period_us = (t % 2 == 0) ? 10000 : 20000;
      a.duration_us = 600;
      if (t > 0) a.predecessors.push_back(t - 1);
      sub.system.activities.push_back(std::move(a));
    }
    Activity msg;  // ...plus one message on the shared backbone.
    msg.id = tasks_each;
    msg.name = sub.name + "-msg";
    msg.resource = 1000;
    msg.period_us = 10000;
    msg.duration_us = 150;
    msg.predecessors.push_back(tasks_each - 1);
    sub.system.activities.push_back(std::move(msg));
    sub.system.offset_granularity_us = 50;
    subs.push_back(std::move(sub));
  }
  return subs;
}

System flatten(const std::vector<Subsystem>& subs) {
  System big;
  int next_id = 0;
  for (const auto& sub : subs) {
    const int base = next_id;
    for (const Activity& a : sub.system.activities) {
      Activity copy = a;
      copy.id = next_id++;
      copy.predecessors.clear();
      for (int p : a.predecessors) copy.predecessors.push_back(base + p);
      big.activities.push_back(std::move(copy));
    }
  }
  big.offset_granularity_us = 50;
  return big;
}

void run_experiment() {
  std::puts("E6 — monolithic synthesis vs modular schedule integration\n");
  ev::util::Table table("synthesis effort vs system size (5 tasks + 1 bus message "
                        "per subsystem)",
                        {"subsystems", "activities", "monolithic steps",
                         "monolithic ms", "modular steps", "modular ms",
                         "both feasible"});
  for (int n : {2, 4, 8, 16, 32, 48}) {
    const auto subs = make_subsystems(n, 5);

    const auto t0 = Clock::now();
    const Schedule mono = MonolithicSynthesizer().synthesize(flatten(subs));
    const auto t1 = Clock::now();
    const IntegrationResult modular = ScheduleIntegrator().integrate(subs);
    const auto t2 = Clock::now();

    const double mono_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double mod_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    table.add_row({std::to_string(n), std::to_string(n * 6),
                   std::to_string(mono.search_steps), ev::util::fmt(mono_ms, 2),
                   std::to_string(modular.search_steps), ev::util::fmt(mod_ms, 2),
                   (mono.feasible && modular.feasible) ? "yes" : "NO"});
    // Overwritten each size; the snapshot keeps the largest system (n = 48).
    evbench::set_gauge("e6.monolithic.search_steps",
                       static_cast<double>(mono.search_steps));
    evbench::set_gauge("e6.modular.search_steps",
                       static_cast<double>(modular.search_steps));
  }
  table.print();
  std::puts("expected shape: monolithic search effort grows superlinearly with "
            "system size while modular integration stays near-linear — the "
            "paper's argument for integration-phase scheduling ([18]).\n");
}

void bm_monolithic(benchmark::State& state) {
  const auto subs = make_subsystems(static_cast<int>(state.range(0)), 5);
  const System sys = flatten(subs);
  for (auto _ : state)
    benchmark::DoNotOptimize(MonolithicSynthesizer().synthesize(sys));
}
BENCHMARK(bm_monolithic)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void bm_modular(benchmark::State& state) {
  const auto subs = make_subsystems(static_cast<int>(state.range(0)), 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(ScheduleIntegrator().integrate(subs));
}
BENCHMARK(bm_modular)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return evbench::finish("e6_schedule_integration", argc, argv);
}
