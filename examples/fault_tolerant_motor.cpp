// Fault-tolerant motor control (the paper's Fig. 3 narrative): run the PMSM
// drive at speed, break one IGBT, watch the detector locate the fault and
// the controller reconfigure to four-switch operation — then compare the
// waveform quality before, during, and after.
//
//   $ ./fault_tolerant_motor
#include <cstdio>

#include "ev/motor/drive.h"
#include "ev/util/math.h"
#include "ev/util/table.h"

namespace {

struct Phase {
  const char* label;
  double thd;
  double torque_ripple;
  double speed;
};

Phase measure(ev::motor::MotorDrive& drive, const char* label, double speed_ref,
              double load) {
  drive.clear_recording();
  drive.set_recording(true);
  for (int k = 0; k < 8000; ++k) drive.step(speed_ref, load);
  drive.set_recording(false);

  const double fund_hz = drive.machine().electrical_speed() / ev::util::kTwoPi;
  const double thd = ev::motor::total_harmonic_distortion(
      drive.recorded_current_a(), drive.record_rate_hz(), fund_hz);
  double t_min = 1e9, t_max = -1e9, t_sum = 0;
  for (double t : drive.recorded_torque()) {
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
    t_sum += t;
  }
  const double mean_t = t_sum / static_cast<double>(drive.recorded_torque().size());
  return Phase{label, thd, (t_max - t_min) / std::max(mean_t, 1.0),
               drive.machine().speed_rad_s()};
}

}  // namespace

int main() {
  using namespace ev::motor;

  MotorDrive drive;
  const double speed_ref = 200.0;  // rad/s mechanical (~1900 rpm)
  const double load = 30.0;        // Nm

  std::printf("Spinning up to %.0f rad/s against %.0f Nm...\n", speed_ref, load);
  for (int k = 0; k < 30000; ++k) drive.step(speed_ref, load);
  const Phase healthy = measure(drive, "healthy (6-switch SVM)", speed_ref, load);

  std::printf("Breaking the upper IGBT of phase a (open circuit)...\n");
  drive.inject_open_fault(Igbt::kUpperA);
  // Sample the faulted interval before the detector reacts by running a
  // non-fault-tolerant twin — the production drive below reconfigures fast.
  DriveConfig degraded_cfg;
  degraded_cfg.fault_tolerant = false;
  MotorDrive degraded(degraded_cfg);
  for (int k = 0; k < 30000; ++k) degraded.step(speed_ref, load);
  degraded.inject_open_fault(Igbt::kUpperA);
  const Phase faulted = measure(degraded, "faulted (no reaction)", speed_ref, load);

  for (int k = 0; k < 60000 && drive.mode() != DriveMode::kReconfigured; ++k)
    drive.step(speed_ref, load);
  std::printf("Fault detected and leg isolated after %.2f ms; reconfigured to "
              "four-switch (B4) modulation.\n",
              drive.detection_latency_s().value_or(0.0) * 1e3);
  for (int k = 0; k < 40000; ++k) drive.step(speed_ref, load);  // settle
  const Phase recovered = measure(drive, "reconfigured (4-switch)", speed_ref, load);

  ev::util::Table table("waveform quality across the fault sequence",
                        {"phase", "current THD", "torque ripple", "speed [rad/s]"});
  for (const Phase& p : {healthy, faulted, recovered})
    table.add_row({p.label, ev::util::fmt_pct(p.thd), ev::util::fmt_pct(p.torque_ripple),
                   ev::util::fmt(p.speed, 1)});
  table.print();

  std::printf("\nThe reconfigured drive holds the speed command with bounded "
              "ripple — the fault-tolerant control strategy the paper calls for.\n");
  return 0;
}
