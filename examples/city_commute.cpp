// City commute under full co-simulation: the powertrain plant, the Fig. 1
// in-vehicle network, and the middleware-hosted cockpit software share one
// clock. Real battery telemetry crosses from the chassis FlexRay through
// the central gateway into the infotainment domain, where the range
// information service answers the HMI.
//
// The whole stack is assembled by the composition root from a declarative
// scenario: observability, health monitoring, and authenticated chassis
// telemetry plug in as subsystems — the same wiring `evsys run
// examples/scenarios/city_commute.scn` produces.
//
//   $ ./city_commute
#include <cstdio>

#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/util/table.h"

int main() {
  using namespace ev::core;

  ev::config::ScenarioSpec spec;
  spec.name = "city-commute";
  spec.drive.cycle = ev::config::CycleKind::kUrban;
  spec.drive.repeat = 2;
  spec.bms.balancing = ev::config::Balancing::kActive;
  spec.powertrain.seed = 7;
  spec.subsystems.obs = true;
  spec.subsystems.health = true;
  spec.subsystems.security = true;

  std::printf("Commuting %.1f km of stop-and-go under co-simulation...\n\n",
              to_drive_cycle(spec).ideal_distance_m() / 1000.0);

  std::unique_ptr<VehicleSystem> vehicle;
  const ScenarioRunResult result = run_scenario(spec, &vehicle);
  const CoSimResult& r = result.cosim;

  ev::util::Table drive("driving", {"metric", "value"});
  drive.add_row({"distance", ev::util::fmt(r.cycle.distance_km, 2) + " km"});
  drive.add_row({"consumption", ev::util::fmt(r.cycle.consumption_wh_km, 1) + " Wh/km"});
  drive.add_row({"recuperated", ev::util::fmt(r.cycle.regen_recovered_wh, 0) + " Wh"});
  drive.add_row({"final SoC", ev::util::fmt_pct(r.cycle.final_soc)});
  drive.print();

  ev::util::Table net("in-vehicle network during the commute",
                      {"bus", "utilization", "frames", "mean latency"});
  for (auto* bus : vehicle->network().buses()) {
    net.add_row({bus->name(), ev::util::fmt_pct(bus->utilization(), 2),
                 std::to_string(bus->delivered_count()),
                 ev::util::fmt(bus->latency().mean() * 1e3, 3) + " ms"});
  }
  net.print();

  std::printf("\nBattery telemetry: %zu frames published on chassis FlexRay, "
              "%zu received in infotainment (mean %.2f ms door to door)\n",
              r.bms_frames_published, r.bms_frames_at_hmi, r.bms_to_hmi_latency_ms);
  std::printf("Range service answered %zu HMI queries; final answer: %.0f km\n",
              r.range_service_calls, r.last_range_km);

  auto* security = vehicle->find_subsystem<SecuritySubsystem>();
  std::printf("Authenticated telemetry on the backbone: %llu frames protected, "
              "%llu verified, %llu rejected\n",
              static_cast<unsigned long long>(security->frames_protected()),
              static_cast<unsigned long long>(security->frames_authenticated()),
              static_cast<unsigned long long>(security->frames_rejected()));

  // Middleware health after the drive: all partitions still running.
  auto& cockpit = vehicle->cockpit();
  for (std::size_t p = 0; p < cockpit.partition_count(); ++p) {
    const auto& part = cockpit.partition(p);
    std::printf("Partition '%s': %llu jobs, %llu faults\n", part.name().c_str(),
                static_cast<unsigned long long>(part.jobs_completed()),
                static_cast<unsigned long long>(part.fault_count()));
  }

  auto* obs = vehicle->find_subsystem<ObservabilitySubsystem>();
  std::printf("\nKernel dispatched %llu events for the whole commute.\n",
              static_cast<unsigned long long>(obs->metrics().counter_value(
                  obs->metrics().counter("sim.events_dispatched"))));
  if (obs->export_files("city_commute"))
    std::printf("Full observability snapshot: city_commute.metrics.json\n");
  return 0;
}
