// City commute under full co-simulation: the powertrain plant, the Fig. 1
// in-vehicle network, and the middleware-hosted cockpit software share one
// clock. Real battery telemetry crosses from the chassis FlexRay through
// the central gateway into the infotainment domain, where the range
// information service answers the HMI.
//
//   $ ./city_commute
#include <cstdio>

#include "ev/core/cosim.h"
#include "ev/obs/export.h"
#include "ev/obs/metrics.h"
#include "ev/obs/sim_observer.h"
#include "ev/powertrain/drive_cycle.h"
#include "ev/util/table.h"

int main() {
  using namespace ev::core;
  using ev::powertrain::DriveCycle;

  VehicleSystemConfig config;
  config.powertrain.bms.balancing = ev::bms::BalancingKind::kActive;
  config.powertrain.seed = 7;

  VehicleSystem vehicle(config);

  // Observe the whole stack: kernel dispatch, every bus, and the cockpit
  // middleware all report into one registry.
  ev::obs::MetricsRegistry metrics;
  ev::obs::SimObserver kernel_observer(metrics);
  vehicle.simulator().set_observer(&kernel_observer);
  for (auto* bus : vehicle.network().buses()) bus->attach_observer(metrics);
  vehicle.cockpit().attach_observer(metrics);

  const DriveCycle commute = DriveCycle::repeat(DriveCycle::urban(), 2);
  std::printf("Commuting %.1f km of stop-and-go under co-simulation...\n\n",
              commute.ideal_distance_m() / 1000.0);

  const CoSimResult r = vehicle.run(commute);

  ev::util::Table drive("driving", {"metric", "value"});
  drive.add_row({"distance", ev::util::fmt(r.cycle.distance_km, 2) + " km"});
  drive.add_row({"consumption", ev::util::fmt(r.cycle.consumption_wh_km, 1) + " Wh/km"});
  drive.add_row({"recuperated", ev::util::fmt(r.cycle.regen_recovered_wh, 0) + " Wh"});
  drive.add_row({"final SoC", ev::util::fmt_pct(r.cycle.final_soc)});
  drive.print();

  ev::util::Table net("in-vehicle network during the commute",
                      {"bus", "utilization", "frames", "mean latency"});
  for (auto* bus : vehicle.network().buses()) {
    net.add_row({bus->name(), ev::util::fmt_pct(bus->utilization(), 2),
                 std::to_string(bus->delivered_count()),
                 ev::util::fmt(bus->latency().mean() * 1e3, 3) + " ms"});
  }
  net.print();

  std::printf("\nBattery telemetry: %zu frames published on chassis FlexRay, "
              "%zu received in infotainment (mean %.2f ms door to door)\n",
              r.bms_frames_published, r.bms_frames_at_hmi, r.bms_to_hmi_latency_ms);
  std::printf("Range service answered %zu HMI queries; final answer: %.0f km\n",
              r.range_service_calls, r.last_range_km);

  // Middleware health after the drive: all partitions still running.
  auto& cockpit = vehicle.cockpit();
  for (std::size_t p = 0; p < cockpit.partition_count(); ++p) {
    const auto& part = cockpit.partition(p);
    std::printf("Partition '%s': %llu jobs, %llu faults\n", part.name().c_str(),
                static_cast<unsigned long long>(part.jobs_completed()),
                static_cast<unsigned long long>(part.fault_count()));
  }

  std::printf("\nKernel dispatched %llu events for the whole commute.\n",
              static_cast<unsigned long long>(metrics.counter_value(
                  metrics.counter("sim.events_dispatched"))));
  if (ev::obs::write_metrics_json_file(metrics, "city_commute.json"))
    std::printf("Full observability snapshot: city_commute.json\n");
  return 0;
}
