// Quickstart: build a compact EV, drive one urban cycle, and read out the
// energy ledger and the information system's range projection.
//
//   $ ./quickstart
//
// This touches the three layers a new user needs first: the powertrain
// plant (battery + BMS + motor + vehicle), the drive-cycle library, and the
// range estimator feeding the information system.
#include <cstdio>

#include "ev/powertrain/drive_cycle.h"
#include "ev/powertrain/simulation.h"
#include "ev/util/table.h"

int main() {
  using namespace ev::powertrain;

  // 1. Configure the vehicle. Defaults model a ~1.6 t compact EV with a
  //    96-cell / ~14 kWh pack; tweak any field of the config to taste.
  PowertrainConfig config;
  config.pack.module_count = 8;
  config.pack.cells_per_module = 12;
  config.bms.balancing = ev::bms::BalancingKind::kActive;
  config.seed = 2024;

  PowertrainSimulation vehicle(config);

  // 2. Drive one synthetic urban cycle (UDDS-like stop-and-go).
  const DriveCycle cycle = DriveCycle::urban();
  std::printf("Driving '%s': %.1f km ideal distance, %d stops, %.0f s\n",
              cycle.name().c_str(), cycle.ideal_distance_m() / 1000.0,
              cycle.stop_count(), cycle.duration_s());

  const CycleResult result = vehicle.run_cycle(cycle);

  // 3. Read out the ledger.
  ev::util::Table table("urban cycle result", {"metric", "value"});
  table.add_row({"distance", ev::util::fmt(result.distance_km, 2) + " km"});
  table.add_row({"consumption", ev::util::fmt(result.consumption_wh_km, 1) + " Wh/km"});
  table.add_row({"energy drawn", ev::util::fmt(result.battery_energy_out_wh, 0) + " Wh"});
  table.add_row({"energy recuperated",
                 ev::util::fmt(result.regen_recovered_wh, 0) + " Wh"});
  table.add_row({"motor+inverter losses", ev::util::fmt(result.motor_loss_wh, 0) + " Wh"});
  table.add_row({"friction brake losses",
                 ev::util::fmt(result.friction_brake_loss_wh, 0) + " Wh"});
  table.add_row({"12V auxiliary", ev::util::fmt(result.aux_energy_wh, 0) + " Wh"});
  table.add_row({"speed tracking error",
                 ev::util::fmt(result.mean_abs_speed_error_mps, 3) + " m/s"});
  table.add_row({"final pack SoC", ev::util::fmt_pct(result.final_soc)});
  table.print();

  // 4. Ask the information system what is left.
  const double usable_wh = vehicle.pack().usable_energy_wh();
  const double range_km = vehicle.range_estimator().remaining_range_km(usable_wh);
  std::printf("\nInformation system: %.0f Wh usable -> %.0f km remaining range\n",
              usable_wh, range_km);
  std::printf("Destination 50 km away reachable with 15%% reserve: %s\n",
              vehicle.range_estimator().reachable(50.0, usable_wh) ? "yes" : "no");
  return 0;
}
