// Secure charging (Section 4.2): run charging sessions with a
// man-in-the-middle attacker on the connector, with and without
// challenge-response authentication + per-message MACs, and show which
// attacks get through. Also demonstrates why classic CAN cannot carry the
// protected frames while Ethernet can.
//
//   $ ./secure_charging
#include <cstdio>

#include "ev/security/charging.h"
#include "ev/security/secure_channel.h"
#include "ev/util/rng.h"
#include "ev/util/table.h"

int main() {
  using namespace ev::security;

  const Key credential = {'p', 'r', 'o', 'v', 'i', 's', 'i', 'o', 'n', 'e', 'd'};
  ev::util::Rng rng(42);

  ev::util::Table table("charging session under attack (11 kW, 30 min)",
                        {"attack", "auth", "delivered", "billed", "V2G accepted",
                         "rejected msgs", "attack succeeded"});

  const MitmAttacker::Attack attacks[] = {
      MitmAttacker::Attack::kNone, MitmAttacker::Attack::kInflateBilling,
      MitmAttacker::Attack::kInjectV2g, MitmAttacker::Attack::kReplayMeter};
  const char* names[] = {"none", "inflate-billing", "inject-V2G", "replay-meter"};

  for (bool auth : {false, true}) {
    for (std::size_t a = 0; a < 4; ++a) {
      MitmAttacker attacker(attacks[a]);
      ChargingConfig cfg;
      cfg.authenticate = auth;
      const SessionOutcome out =
          run_charging_session(credential, cfg, attacker, 11.0, 1800.0, rng);
      const bool fraud = out.billed_kwh > out.delivered_kwh + 1e-9 ||
                         out.accepted_v2g_commands > 0;
      table.add_row({names[a], auth ? "challenge-response" : "off",
                     ev::util::fmt(out.delivered_kwh, 3) + " kWh",
                     ev::util::fmt(out.billed_kwh, 3) + " kWh",
                     std::to_string(out.accepted_v2g_commands),
                     std::to_string(out.rejected_messages), fraud ? "YES" : "no"});
    }
  }
  table.print();

  // Why the in-vehicle transport matters: per-frame security overhead.
  SecureChannel channel(Key(32, 0x11), 1);
  std::printf("\nSecure-channel overhead: %zu bytes per message "
              "(counter + truncated HMAC tag)\n",
              channel.overhead_bytes());
  std::printf("  classic CAN frame (8-byte payload):   %s\n",
              channel.max_plaintext(8) ? "fits" : "DOES NOT FIT -> CAN unsuitable");
  std::printf("  FlexRay static slot (16-byte payload): %zu plaintext bytes\n",
              channel.max_plaintext(16).value_or(0));
  std::printf("  Ethernet frame (1500-byte payload):    %zu plaintext bytes\n",
              channel.max_plaintext(1500).value_or(0));
  return 0;
}
