// Architecture design walk-through (the paper's core argument): take one
// functional network, deploy it federated (Fig. 1 style) and integrated
// (consolidated domain controllers on one backbone), compare the metrics,
// synthesize a time-triggered schedule for the control chains, and formally
// verify a control message's transmission pattern.
//
//   $ ./network_architect
#include <cstdio>

#include "ev/core/evaluation.h"
#include "ev/core/synthesis.h"
#include "ev/scheduling/synthesis.h"
#include "ev/util/table.h"
#include "ev/verification/model_checker.h"

int main() {
  using namespace ev::core;

  // --- 1. The functional content of a compact EV ----------------------------
  const FunctionNetwork net = reference_function_network();
  std::printf("Function network: %zu functions, %zu signals\n\n", net.functions.size(),
              net.signals.size());

  // --- 2. Deploy both architecture styles -----------------------------------
  const Architecture federated = synthesize_federated(net);
  const Architecture integrated = synthesize_integrated(net);
  const ArchitectureMetrics mf = evaluate(federated);
  const ArchitectureMetrics mi = evaluate(integrated);

  ev::util::Table cmp("federated vs integrated deployment",
                      {"metric", "federated (Fig.1)", "integrated"});
  cmp.add_row({"ECUs", std::to_string(mf.ecu_count), std::to_string(mi.ecu_count)});
  cmp.add_row({"buses", std::to_string(mf.bus_count), std::to_string(mi.bus_count)});
  cmp.add_row({"gateways", std::to_string(mf.gateway_count),
               std::to_string(mi.gateway_count)});
  cmp.add_row({"wiring", ev::util::fmt(mf.wiring_m, 1) + " m",
               ev::util::fmt(mi.wiring_m, 1) + " m"});
  cmp.add_row({"hardware cost", ev::util::fmt(mf.hardware_cost, 1),
               ev::util::fmt(mi.hardware_cost, 1)});
  cmp.add_row({"mean ECU utilization", ev::util::fmt_pct(mf.mean_utilization),
               ev::util::fmt_pct(mi.mean_utilization)});
  cmp.add_row({"networked signals", std::to_string(mf.cross_ecu_signals),
               std::to_string(mi.cross_ecu_signals)});
  cmp.add_row({"ECU-local signals", std::to_string(mf.local_signals),
               std::to_string(mi.local_signals)});
  cmp.print();

  // --- 3. Time-triggered schedule for the brake-by-wire chain ---------------
  // pedal acquisition -> backbone message -> brake controller, 5 ms period.
  ev::scheduling::System sys;
  sys.activities = {{0, "pedal-acq", 0, 5000, 300, {}},
                    {1, "brake-msg", 100, 5000, 50, {0}},
                    {2, "brake-ctrl", 1, 5000, 800, {1}},
                    {3, "actuate-msg", 100, 5000, 50, {2}},
                    {4, "wheel-actuator", 2, 5000, 200, {3}}};
  sys.chains = {{"brake-by-wire", {0, 1, 2, 3, 4}, 5000}};
  const auto schedule = ev::scheduling::MonolithicSynthesizer().synthesize(sys);
  if (schedule.feasible) {
    const auto latency = ev::scheduling::chain_latency_us(sys, schedule, sys.chains[0]);
    std::printf("\nBrake-by-wire chain scheduled time-triggered: end-to-end %lld us "
                "(deadline %lld us), zero jitter by construction.\n",
                static_cast<long long>(latency),
                static_cast<long long>(sys.chains[0].deadline_us));
  }

  // --- 4. Formal verification of the transmission pattern -------------------
  // The brake message occupies 9 of every 10 backbone slots (one slot is a
  // maintenance gap). The control loop tolerates at most 2 consecutive
  // drops: verify by model checking, not by testing.
  const auto system = ev::verification::TransmissionSystem::time_triggered(10, 1);
  const auto ok = ev::verification::verify(
      system, ev::verification::MonitorDfa::max_consecutive_drops(2));
  std::printf("Verification '%s' vs '%s': %s (%zu product states)\n",
              system.description().c_str(), "never more than 2 consecutive drops",
              ok.verified ? "VERIFIED" : "VIOLATED", ok.product_states);

  // And a requirement the pattern cannot meet — with a counterexample.
  const auto bad = ev::verification::verify(
      system, ev::verification::MonitorDfa::at_least_m_of_n(10, 10));
  std::printf("Verification vs 'all 10 of 10 slots': %s (counterexample length %zu)\n",
              bad.verified ? "VERIFIED" : "VIOLATED", bad.counterexample.size());
  return 0;
}
