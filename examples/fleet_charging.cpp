// Fleet charging information system (paper Section 2, "Information
// Systems"): a day in a city where an EV fleet shares a small charging
// infrastructure. Compares what drivers experience when everyone just heads
// to the nearest station against the coordinated assignment a fleet-wide
// information system enables — and shows the fleet serving a V2G request.
//
//   $ ./fleet_charging
#include <cstdio>

#include "ev/infra/charging_network.h"
#include "ev/util/table.h"

int main() {
  using namespace ev::infra;

  FleetConfig cfg;
  cfg.station_count = 5;
  cfg.vehicle_count = 90;
  cfg.sim_hours = 12.0;
  cfg.seed = 7;

  ChargingNetwork city(cfg);
  std::printf("City: %zu charging stations (2 x 50 kW each), fleet of %zu EVs, "
              "12 h of driving.\n\n",
              city.stations().size(), city.fleet().size());

  ev::util::Table table("driver experience by assignment policy",
                        {"policy", "trips done", "mean wait", "max wait",
                         "mean detour", "stranded"});
  for (AssignmentPolicy policy :
       {AssignmentPolicy::kNearestStation, AssignmentPolicy::kCoordinated}) {
    const FleetReport r = city.run(policy);
    table.add_row({to_string(policy), std::to_string(r.trips_completed),
                   ev::util::fmt(r.mean_wait_min, 1) + " min",
                   ev::util::fmt(r.max_wait_min, 1) + " min",
                   ev::util::fmt(r.mean_detour_km, 2) + " km",
                   std::to_string(r.stranded)});
  }
  table.print();

  const FleetReport v2g = city.run(AssignmentPolicy::kCoordinated, 60.0);
  std::printf("\nWith a standing 60 kW V2G request, the plugged fleet fed "
              "%.1f kWh back to the grid over the day while keeping every "
              "vehicle above the %.0f%% SoC reserve.\n",
              v2g.v2g_energy_kwh, cfg.v2g_reserve_soc * 100.0);
  return 0;
}
