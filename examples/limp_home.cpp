// Limp-home walkthrough: a seeded FaultPlan injects a partition crash, a
// noisy CAN segment, and finally a stuck BMS voltage sensor while the
// vehicle drives an urban cycle. Each fault is caught by its regular
// detector (heartbeat watchdog, network health watcher, debounced safety
// monitor) and the DegradationManager steps the powertrain down —
// normal -> derated -> limp-home -> safe-stop — instead of cutting torque
// on the first anomaly.
//
//   $ ./limp_home
#include <cstdio>

#include "ev/bms/battery_manager.h"
#include "ev/faults/degradation.h"
#include "ev/faults/fault_plan.h"
#include "ev/faults/network_faults.h"
#include "ev/middleware/health.h"
#include "ev/middleware/middleware.h"
#include "ev/network/can.h"
#include "ev/powertrain/simulation.h"
#include "ev/sim/simulator.h"
#include "ev/util/table.h"

int main() {
  using ev::faults::DegradationManager;
  using ev::faults::DriveMode;
  using ev::sim::Time;

  ev::sim::Simulator sim;
  DegradationManager deg(sim);

  // The degraded modes constrain the real plant, not just a flag.
  ev::powertrain::PowertrainSimulation plant;
  deg.set_listener([&](DriveMode from, DriveMode to, const std::string& cause) {
    plant.set_drive_limits(deg.torque_limit_fraction(), deg.speed_limit_mps());
    std::printf("[%7.3f s] %s -> %s (%s)\n", sim.now().to_seconds(),
                ev::faults::to_string(from).c_str(), ev::faults::to_string(to).c_str(),
                cause.c_str());
  });

  // Middleware with a watchdog-guarded drive partition.
  ev::middleware::Middleware mw(sim, "vcu", 10000);
  const std::size_t p_drive = mw.create_partition("drive", 4000, 2);
  ev::middleware::HealthMonitor health(sim, mw);
  health.set_listener([&](std::size_t, ev::middleware::HealthEvent event, Time latency) {
    if (event == ev::middleware::HealthEvent::kFailureDetected)
      std::printf("[%7.3f s] watchdog: drive partition silent for %.1f ms\n",
                  sim.now().to_seconds(), latency.to_seconds() * 1e3);
    if (event == ev::middleware::HealthEvent::kRestart) deg.on_partition_restart();
  });
  health.start();
  mw.start();

  // A watched CAN segment with periodic background traffic.
  ev::network::CanBus can(sim, "body_can", 125e3);
  sim.schedule_periodic(Time::us(300), Time::ms(10), [&] {
    ev::network::Frame f;
    f.id = 0x310;
    f.source = 3;
    (void)can.send(f);
  });
  ev::faults::NetworkHealthWatcher watcher(sim, deg, {5000, 0.5});
  watcher.watch(can);
  watcher.start();

  // The plant and its BMS feed the mode machine every 100 ms.
  sim.schedule_periodic(Time::ms(100), Time::ms(100), [&] {
    (void)plant.step(14.0);  // urban target: 50 km/h
    deg.on_bms(plant.bms().report().action);
  });

  // One seeded plan, three fault classes.
  ev::faults::FaultPlan plan(42);
  plan.set_degradation(&deg);
  plan.add(Time::s(2), "partition crash",
           [&] { mw.partition(p_drive).inject_crash(); });
  plan.add(Time::s(5), "CAN corruption burst", [&] { can.inject_corruption(4); });
  plan.add(Time::s(6), "CAN bus-off", [&] { can.inject_bus_off(Time::ms(20)); });
  plan.arm(sim);

  std::puts("driving; injecting faults at t = 2 s, 5 s, 6 s...\n");
  sim.run_until(Time::s(12));

  ev::util::Table summary("after 12 s", {"metric", "value"});
  summary.add_row({"drive mode", ev::faults::to_string(deg.mode())});
  summary.add_row({"vehicle speed", ev::util::fmt(plant.vehicle().speed_mps() * 3.6, 1) +
                                        " km/h"});
  summary.add_row({"torque limit", ev::util::fmt_pct(deg.torque_limit_fraction())});
  summary.add_row({"partition restarts", std::to_string(health.restarts())});
  summary.add_row({"bus fault episodes", std::to_string(watcher.faults_reported())});
  summary.add_row({"faults injected", std::to_string(plan.injections().size())});
  summary.print();
  return 0;
}
