// Limp-home walkthrough: a seeded FaultPlan injects a cockpit partition
// crash, two corruption bursts, and finally a bus-off on the safety CAN
// while the vehicle drives an urban cycle. Each fault is caught by its
// regular detector (heartbeat watchdog, network health watcher) and the
// DegradationManager steps the powertrain down —
// normal -> derated -> limp-home -> safe-stop — instead of cutting torque
// on the first anomaly.
//
// The whole arrangement is declarative: the scenario spec below is the
// in-code twin of examples/scenarios/limp_home.scn, and the composition
// root wires plan, watcher, watchdog, and mode machine from it.
//
//   $ ./limp_home
#include <cstdio>

#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/faults/degradation.h"
#include "ev/util/table.h"

int main() {
  using namespace ev::core;

  ev::config::ScenarioSpec spec;
  spec.name = "limp-home";
  spec.drive.cycle = ev::config::CycleKind::kUrban;
  spec.drive.repeat = 1;
  spec.powertrain.seed = 7;
  spec.subsystems.obs = true;
  spec.subsystems.faults = true;
  spec.subsystems.health = true;
  spec.fault_seed = 42;
  using ev::config::FaultEventSpec;
  using ev::config::FaultKind;
  spec.faults = {
      FaultEventSpec{2.0, FaultKind::kPartitionCrash, "information", 0.0},
      FaultEventSpec{5.0, FaultKind::kBusCorrupt, "safety_can", 4.0},
      FaultEventSpec{6.0, FaultKind::kBusCorrupt, "safety_can", 4.0},
      FaultEventSpec{8.0, FaultKind::kBusOff, "safety_can", 0.05},
  };

  std::puts("driving the urban cycle; injecting faults at t = 2 s, 5 s, 6 s, 8 s...\n");

  std::unique_ptr<VehicleSystem> vehicle;
  const ScenarioRunResult result = run_scenario(spec, &vehicle);

  auto* faults = vehicle->find_subsystem<FaultsSubsystem>();
  auto* health = vehicle->find_subsystem<HealthSubsystem>();

  for (const auto& change : faults->mode_changes())
    std::printf("[%7.3f s] %s -> %s (%s)\n", change.t_s,
                ev::faults::to_string(change.from).c_str(),
                ev::faults::to_string(change.to).c_str(), change.cause.c_str());

  ev::util::Table summary("after the drive", {"metric", "value"});
  summary.add_row({"drive mode", ev::faults::to_string(faults->degradation().mode())});
  summary.add_row({"distance", ev::util::fmt(result.cosim.cycle.distance_km, 2) + " km"});
  summary.add_row(
      {"torque limit", ev::util::fmt_pct(faults->degradation().torque_limit_fraction())});
  summary.add_row({"partition restarts", std::to_string(health->monitor().restarts())});
  summary.add_row({"bus fault episodes", std::to_string(faults->watcher().faults_reported())});
  summary.add_row({"faults injected", std::to_string(faults->plan().injections().size())});
  summary.print();
  return 0;
}
