// Observability walk-through: the ObservabilitySubsystem plugs one metric
// registry and one span sink into every layer of the composed vehicle —
// the event kernel, all five Fig. 1 buses, the central gateway, and the
// partitioned cockpit middleware — then a short urban drive runs and the
// snapshot is exported as JSON/CSV plus a Chrome about:tracing span file.
//
//   $ ./observability_demo
//   $ # then open chrome://tracing and load observability_demo.trace.json
#include <cstdio>

#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"

int main() {
  using namespace ev::core;

  ev::config::ScenarioSpec spec;
  spec.name = "observability-demo";
  spec.drive.cycle = ev::config::CycleKind::kUrban;
  spec.drive.repeat = 1;
  spec.powertrain.seed = 3;
  spec.subsystems.obs = true;

  std::unique_ptr<VehicleSystem> vehicle;
  const ScenarioRunResult result = run_scenario(spec, &vehicle);

  auto* obs = vehicle->find_subsystem<ObservabilitySubsystem>();
  auto& metrics = obs->metrics();

  std::printf("one urban cycle (%.1f s simulated) — selected metrics:\n",
              result.cosim.cycle.duration_s);
  std::printf("  sim.events_dispatched    %llu\n",
              static_cast<unsigned long long>(metrics.counter_value(
                  metrics.counter("sim.events_dispatched"))));
  for (auto* bus : vehicle->network().buses()) {
    const std::string prefix = "net." + bus->name();
    std::printf("  %-24s %llu frames, %.2f%% load\n", bus->name().c_str(),
                static_cast<unsigned long long>(
                    metrics.counter_value(metrics.counter(prefix + ".frames"))),
                100.0 * metrics.gauge_value(metrics.gauge(prefix + ".utilization")));
  }
  std::printf("  mw.cockpit-controller.frames  %llu\n",
              static_cast<unsigned long long>(metrics.counter_value(
                  metrics.counter("mw.cockpit-controller.frames"))));
  // jobs_completed is exported as a gauge (absolute count snapshot, not an
  // increment stream) — reading it as a counter would clash on the kind.
  std::printf("  information partition jobs    %llu\n",
              static_cast<unsigned long long>(metrics.gauge_value(metrics.gauge(
                  "mw.cockpit-controller.information.jobs_completed"))));
  std::printf("  information budget util  %.3f\n",
              metrics.gauge_value(
                  metrics.gauge("mw.cockpit-controller.information.budget_util")));
  std::printf("  partition spans recorded %zu\n", obs->trace().spans().size());

  const bool ok = obs->export_files("observability_demo");
  std::printf("\nexports: observability_demo.metrics.{json,csv} + "
              "observability_demo.trace.json %s\n",
              ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
