// Observability walk-through: attach the metric registry and span sink to
// every layer of a small consolidated ECU — the event kernel, a partitioned
// middleware with a typed pub/sub topic, and a CAN bus — run it, and export
// the snapshot as JSON/CSV plus a Chrome about:tracing span file.
//
//   $ ./observability_demo
//   $ # then open chrome://tracing and load observability_demo.trace.json
#include <cstdio>

#include "ev/middleware/middleware.h"
#include "ev/network/can.h"
#include "ev/obs/export.h"
#include "ev/obs/metrics.h"
#include "ev/obs/sim_observer.h"
#include "ev/obs/span_trace.h"
#include "ev/sim/simulator.h"

int main() {
  using namespace ev;

  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;

  // --- kernel: event counts, dispatch-delay distribution, queue depth -------
  obs::SimObserver kernel_observer(metrics);
  sim.set_observer(&kernel_observer);
  const sim::EventTag sensor_tag = kernel_observer.source("wheel_sensor");

  // --- network: frame counters, latency histogram, bus-load gauge -----------
  network::CanBus can(sim, "body", 500e3);
  can.attach_observer(metrics);
  can.subscribe([](const network::Frame&, sim::Time) {});

  // --- middleware: per-partition budget gauges + partition-window spans -----
  middleware::Middleware mw(sim, "cockpit", 10000);
  mw.attach_observer(metrics, &trace);
  const std::size_t ctrl = mw.create_partition("ctrl", 4000);
  const std::size_t hmi = mw.create_partition("hmi", 3000);

  // A typed topic carries wheel speed from ctrl to hmi — no hand-rolled
  // byte packing, delivery at the deterministic window flush points.
  middleware::Topic<double> wheel_speed(mw.broker(), 1);
  double latest_kmh = 0.0;
  wheel_speed.subscribe([&](const double& kmh) { latest_kmh = kmh; });

  int ticks = 0;
  mw.deploy(ctrl, middleware::Runnable{"speed-pub", 10000, 500, [&] {
                                         wheel_speed.publish(30.0 + 0.5 * ++ticks,
                                                             sim.now().to_us());
                                         return middleware::RunOutcome::kOk;
                                       }});
  mw.deploy(hmi, middleware::Runnable{"hmi-refresh", 20000, 1000, [] {
                                        return middleware::RunOutcome::kOk;
                                      }});
  mw.start();

  // Tagged sensor traffic on the CAN bus every 5 ms.
  sim.schedule_periodic(
      sim::Time::ms(5), sim::Time::ms(5),
      [&] {
        network::Frame f;
        f.id = 0x123;
        f.payload_size = 8;
        (void)can.send(f);
      },
      sensor_tag);

  sim.run_until(sim::Time::s(1));

  std::printf("1 s of simulated operation — selected metrics:\n");
  std::printf("  sim.events_dispatched    %llu\n",
              static_cast<unsigned long long>(metrics.counter_value(
                  metrics.counter("sim.events_dispatched"))));
  std::printf("  sim.dispatched.wheel_sensor  %llu\n",
              static_cast<unsigned long long>(metrics.counter_value(
                  metrics.counter("sim.dispatched.wheel_sensor"))));
  std::printf("  net.body.frames          %llu\n",
              static_cast<unsigned long long>(
                  metrics.counter_value(metrics.counter("net.body.frames"))));
  std::printf("  net.body.utilization     %.4f\n",
              metrics.gauge_value(metrics.gauge("net.body.utilization")));
  std::printf("  mw.cockpit.frames        %llu\n",
              static_cast<unsigned long long>(
                  metrics.counter_value(metrics.counter("mw.cockpit.frames"))));
  std::printf("  mw.cockpit.ctrl.budget_util  %.3f\n",
              metrics.gauge_value(metrics.gauge("mw.cockpit.ctrl.budget_util")));
  std::printf("  mw.cockpit.pubsub.delivered  %llu\n",
              static_cast<unsigned long long>(metrics.counter_value(
                  metrics.counter("mw.cockpit.pubsub.delivered"))));
  std::printf("  last wheel speed at HMI  %.1f km/h\n", latest_kmh);
  std::printf("  partition spans recorded %zu\n", trace.spans().size());

  const bool json_ok =
      obs::write_metrics_json_file(metrics, "observability_demo.json");
  const bool csv_ok = obs::write_metrics_csv_file(metrics, "observability_demo.csv");
  const bool trace_ok =
      obs::write_chrome_trace_file(trace, "observability_demo.trace.json");
  std::printf("\nexports: metrics json %s, metrics csv %s, chrome trace %s\n",
              json_ok ? "ok" : "FAILED", csv_ok ? "ok" : "FAILED",
              trace_ok ? "ok" : "FAILED");
  return json_ok && csv_ok && trace_ok ? 0 : 1;
}
